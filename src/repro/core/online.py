"""On-line adaptive monitoring: one prediction per incoming monitoring mark.

The paper's title promises *adaptive on-line* prediction: metrics arrive
every 15 seconds and the model must keep re-estimating the time to failure
under whatever the current consumption regime is, reacting when the injection
rate changes (Experiment 4.2) and raising the alarm early enough for a
rejuvenation action to be scheduled.

``OnlineAgingMonitor`` wraps a fitted :class:`repro.core.predictor.AgingPredictor`
behind a streaming interface: feed it one :class:`MonitoringSample` at a time
and it returns the current prediction, tracking whether the rejuvenation
alarm threshold has been crossed.  The companion extended report of the paper
uses exactly this loop to drive a clean automatic recovery of the server.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.predictor import AgingPredictor
from repro.testbed.monitoring.collector import MonitoringSample, Trace

__all__ = ["OnlineAgingMonitor", "OnlinePrediction"]


@dataclass(frozen=True)
class OnlinePrediction:
    """The monitor's output after one monitoring mark."""

    time_seconds: float
    predicted_ttf_seconds: float
    alarm: bool

    @property
    def predicted_crash_time(self) -> float:
        """Absolute simulation time at which the crash is expected."""
        return self.time_seconds + self.predicted_ttf_seconds


class OnlineAgingMonitor:
    """Streaming wrapper around a fitted :class:`AgingPredictor`.

    Parameters
    ----------
    predictor:
        A fitted predictor (its feature window determines how much history
        the monitor keeps).
    alarm_threshold_seconds:
        When the predicted time to failure falls to or below this value the
        monitor raises its alarm flag -- the hook a rejuvenation policy would
        use to schedule a restart.
    alarm_consecutive:
        Number of consecutive below-threshold predictions required before the
        alarm fires, protecting against one-sample blips.
    """

    def __init__(
        self,
        predictor: AgingPredictor,
        alarm_threshold_seconds: float = 600.0,
        alarm_consecutive: int = 2,
    ) -> None:
        if not predictor.is_fitted:
            raise ValueError("the predictor must be fitted before it can monitor on-line")
        if alarm_threshold_seconds <= 0:
            raise ValueError("alarm_threshold_seconds must be positive")
        if alarm_consecutive < 1:
            raise ValueError("alarm_consecutive must be at least 1")
        self.predictor = predictor
        self.alarm_threshold_seconds = float(alarm_threshold_seconds)
        self.alarm_consecutive = alarm_consecutive
        # Only the feature window's worth of history is retained: predictions
        # are computed incrementally (see observe), so the monitor's memory
        # and per-mark cost stay O(window) however long the stream runs.
        self._recent: deque[MonitoringSample] = deque(maxlen=predictor.window + 1)
        self._stream = predictor.feature_stream()
        self._num_observed = 0
        self._below_threshold_streak = 0
        self._alarm_raised = False
        self.predictions: list[OnlinePrediction] = []

    # ----------------------------------------------------------------- state

    @property
    def num_samples(self) -> int:
        return self._num_observed

    @property
    def recent_samples(self) -> list[MonitoringSample]:
        """The retained tail of the stream (up to ``window + 1`` marks)."""
        return list(self._recent)

    @property
    def alarm_raised(self) -> bool:
        """Whether the alarm has fired at any point of the stream so far."""
        return self._alarm_raised

    @property
    def alarm_time(self) -> float | None:
        """Time of the first alarming prediction, or ``None``."""
        for prediction in self.predictions:
            if prediction.alarm:
                return prediction.time_seconds
        return None

    def reset(self) -> None:
        """Forget all streamed samples and predictions (e.g. after rejuvenation)."""
        self._recent.clear()
        self._stream = self.predictor.feature_stream()
        self._num_observed = 0
        self.predictions.clear()
        self._below_threshold_streak = 0
        self._alarm_raised = False

    # ------------------------------------------------------------------ feed

    def observe(self, sample: MonitoringSample) -> OnlinePrediction:
        """Ingest one monitoring mark and return the updated prediction.

        The derived variables are maintained incrementally (sliding windows
        need only the recent past), so the prediction at time t uses no
        future information and costs O(window) -- while staying bit-for-bit
        identical to re-predicting the full history at every mark.
        """
        if self._recent and sample.time_seconds <= self._recent[-1].time_seconds:
            raise ValueError("monitoring samples must arrive in strictly increasing time order")
        self._recent.append(sample)
        self._num_observed += 1
        predicted = self.predictor.predict_row(self._stream.push(sample))

        if predicted <= self.alarm_threshold_seconds:
            self._below_threshold_streak += 1
        else:
            self._below_threshold_streak = 0
        alarm = self._below_threshold_streak >= self.alarm_consecutive
        if alarm:
            self._alarm_raised = True
        prediction = OnlinePrediction(
            time_seconds=sample.time_seconds,
            predicted_ttf_seconds=predicted,
            alarm=alarm,
        )
        self.predictions.append(prediction)
        return prediction

    def replay(self, trace: Trace) -> list[OnlinePrediction]:
        """Stream a whole trace through the monitor and return all predictions."""
        return [self.observe(sample) for sample in trace]

    def predicted_series(self) -> np.ndarray:
        """Predicted TTF values of every mark observed so far."""
        return np.array([prediction.predicted_ttf_seconds for prediction in self.predictions])
