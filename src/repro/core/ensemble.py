"""Prediction board: a consensus of several predictors (the paper's future work).

The conclusions of the paper sketch the idea of "a prediction board with a
set of prediction models to reach a consensus to increase the prediction
accuracy".  ``PredictionBoard`` implements that extension: it trains several
:class:`repro.core.predictor.AgingPredictor` instances (possibly of different
model families or window lengths) on the same traces and combines their
per-mark predictions with a median or mean consensus.
"""

from __future__ import annotations

from typing import Iterable, Literal, Sequence

import numpy as np

from repro.core.evaluation import PredictionEvaluation, evaluate_predictions
from repro.core.predictor import AgingPredictor
from repro.testbed.monitoring.collector import Trace

__all__ = ["PredictionBoard"]

ConsensusRule = Literal["median", "mean"]


class PredictionBoard:
    """Combine several aging predictors into one consensus prediction.

    Parameters
    ----------
    predictors:
        The board members.  They may use different model families, windows or
        feature subsets; each is trained independently on the same traces.
    consensus:
        ``"median"`` (robust to one badly wrong member, the default) or
        ``"mean"``.
    """

    def __init__(self, predictors: Sequence[AgingPredictor], consensus: ConsensusRule = "median") -> None:
        members = list(predictors)
        if not members:
            raise ValueError("the prediction board needs at least one predictor")
        if consensus not in ("median", "mean"):
            raise ValueError(f"unknown consensus rule {consensus!r}; expected 'median' or 'mean'")
        self.members = members
        self.consensus = consensus

    # ------------------------------------------------------------------- fit

    def fit(self, traces: Iterable[Trace]) -> "PredictionBoard":
        """Train every board member on the same training traces."""
        trace_list = list(traces)
        for member in self.members:
            member.fit(trace_list)
        return self

    @property
    def is_fitted(self) -> bool:
        return all(member.is_fitted for member in self.members)

    # --------------------------------------------------------------- predict

    def member_predictions(self, trace: Trace) -> np.ndarray:
        """Matrix of per-member predictions (members x marks)."""
        if not self.is_fitted:
            raise RuntimeError("the prediction board has not been fitted yet")
        return np.vstack([member.predict_trace(trace) for member in self.members])

    def predict_trace(self, trace: Trace) -> np.ndarray:
        """Consensus prediction at every monitoring mark of a trace."""
        stacked = self.member_predictions(trace)
        if self.consensus == "median":
            return np.median(stacked, axis=0)
        return np.mean(stacked, axis=0)

    # -------------------------------------------------------------- evaluate

    def evaluate_trace(self, trace: Trace, **evaluation_kwargs) -> PredictionEvaluation:
        """Score the consensus prediction with the paper's accuracy measures."""
        if not trace.crashed or trace.crash_time_seconds is None:
            raise ValueError("evaluation requires a crashed trace with a known crash time")
        predictions = self.predict_trace(trace)
        return evaluate_predictions(
            times=trace.times(),
            true_ttf=trace.time_to_failure(),
            predicted_ttf=predictions,
            crash_time=trace.crash_time_seconds,
            **evaluation_kwargs,
        )

    def evaluate_members(self, trace: Trace, **evaluation_kwargs) -> list[PredictionEvaluation]:
        """Score each member individually (to compare against the consensus)."""
        return [member.evaluate_trace(trace, **evaluation_kwargs) for member in self.members]
