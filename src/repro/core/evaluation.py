"""The paper's prediction-accuracy measures: MAE, S-MAE, PRE-MAE and POST-MAE.

Section 2.2 defines four measures used throughout the evaluation:

* **MAE** -- mean absolute error between true and predicted time to failure;
* **S-MAE** ("soft" MAE) -- a prediction within a *security margin* of 10 % of
  the true time to failure counts as zero error; outside the margin the full
  absolute error is counted;
* **PRE-MAE / POST-MAE** -- the MAE restricted to, respectively, everything
  before and the last ten minutes of the run, because the prediction matters
  most when the crash is close.

``evaluate_predictions`` computes all four from a trace's true TTF series and
a prediction series; ``format_duration`` renders seconds the way the paper's
tables do ("16 min 26 secs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "PredictionEvaluation",
    "evaluate_predictions",
    "soft_absolute_errors",
    "format_duration",
    "DEFAULT_SECURITY_MARGIN",
    "DEFAULT_POST_WINDOW_SECONDS",
]

#: The paper's security margin: 10 % of the true time to failure.
DEFAULT_SECURITY_MARGIN = 0.10

#: The paper's POST window: the last 10 minutes before the crash.
DEFAULT_POST_WINDOW_SECONDS = 600.0


@dataclass(frozen=True)
class PredictionEvaluation:
    """The four accuracy figures of one prediction run (all in seconds)."""

    mae_seconds: float
    s_mae_seconds: float
    pre_mae_seconds: float
    post_mae_seconds: float
    num_samples: int

    def as_dict(self) -> dict[str, float]:
        return {
            "MAE": self.mae_seconds,
            "S-MAE": self.s_mae_seconds,
            "PRE-MAE": self.pre_mae_seconds,
            "POST-MAE": self.post_mae_seconds,
        }

    def summary(self) -> str:
        """Human-readable one-line summary in the paper's minute/second style."""
        return (
            f"MAE {format_duration(self.mae_seconds)}, "
            f"S-MAE {format_duration(self.s_mae_seconds)}, "
            f"PRE-MAE {format_duration(self.pre_mae_seconds)}, "
            f"POST-MAE {format_duration(self.post_mae_seconds)}"
        )


def soft_absolute_errors(
    true_ttf: Sequence[float],
    predicted_ttf: Sequence[float],
    security_margin: float = DEFAULT_SECURITY_MARGIN,
) -> np.ndarray:
    """Absolute errors with the security margin applied (S-MAE numerator).

    A prediction within ``security_margin`` of the true time to failure is a
    zero error; anything else keeps its full absolute error, matching the
    paper's example (13 predicted vs 10 real minutes counts as 3 minutes...
    strictly, the paper counts the absolute error, here 2 minutes outside a
    1-minute margin would count 2 minutes -- i.e. the full error, not the
    excess).
    """
    true_arr = np.asarray(true_ttf, dtype=float)
    predicted_arr = np.asarray(predicted_ttf, dtype=float)
    if true_arr.shape != predicted_arr.shape:
        raise ValueError("true and predicted series must have the same length")
    if security_margin < 0:
        raise ValueError("security_margin must be non-negative")
    errors = np.abs(true_arr - predicted_arr)
    margin = security_margin * np.abs(true_arr)
    return np.where(errors <= margin, 0.0, errors)


def evaluate_predictions(
    times: Sequence[float],
    true_ttf: Sequence[float],
    predicted_ttf: Sequence[float],
    crash_time: float | None = None,
    security_margin: float = DEFAULT_SECURITY_MARGIN,
    post_window_seconds: float = DEFAULT_POST_WINDOW_SECONDS,
) -> PredictionEvaluation:
    """Compute MAE, S-MAE, PRE-MAE and POST-MAE of one prediction run.

    Parameters
    ----------
    times:
        Timestamp of each sample (seconds since the start of the run).
    true_ttf / predicted_ttf:
        True and predicted time to failure at each sample.
    crash_time:
        Time of the crash; defaults to the last sample time plus its true TTF
        (exact when the true TTF is derived from the crash, a good
        approximation otherwise).
    security_margin:
        Relative margin of the S-MAE (10 % in the paper).
    post_window_seconds:
        Length of the POST window before the crash (10 minutes in the paper).
    """
    times_arr = np.asarray(times, dtype=float)
    true_arr = np.asarray(true_ttf, dtype=float)
    predicted_arr = np.asarray(predicted_ttf, dtype=float)
    if not (times_arr.shape == true_arr.shape == predicted_arr.shape):
        raise ValueError("times, true_ttf and predicted_ttf must have the same length")
    if times_arr.size == 0:
        raise ValueError("cannot evaluate an empty prediction series")
    if post_window_seconds <= 0:
        raise ValueError("post_window_seconds must be positive")

    errors = np.abs(true_arr - predicted_arr)
    soft_errors = soft_absolute_errors(true_arr, predicted_arr, security_margin)

    effective_crash_time = crash_time if crash_time is not None else float(times_arr[-1] + true_arr[-1])
    post_mask = times_arr >= effective_crash_time - post_window_seconds
    pre_mask = ~post_mask

    mae = float(np.mean(errors))
    s_mae = float(np.mean(soft_errors))
    pre_mae = float(np.mean(errors[pre_mask])) if np.any(pre_mask) else 0.0
    post_mae = float(np.mean(errors[post_mask])) if np.any(post_mask) else 0.0
    return PredictionEvaluation(
        mae_seconds=mae,
        s_mae_seconds=s_mae,
        pre_mae_seconds=pre_mae,
        post_mae_seconds=post_mae,
        num_samples=int(times_arr.size),
    )


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper's tables do: ``"15 min 14 secs"``.

    Durations under a minute render as ``"21 secs"``; negative inputs are
    rejected because an error cannot be negative.
    """
    if seconds < 0:
        raise ValueError("durations cannot be negative")
    whole_seconds = int(round(seconds))
    minutes, remainder = divmod(whole_seconds, 60)
    if minutes == 0:
        return f"{remainder} secs"
    return f"{minutes} min {remainder} secs"
