"""Time-to-failure datasets built from testbed traces.

The paper trains its models on *failure executions*: every monitoring mark of
a run that ended in a crash is labelled with the true time remaining until
that crash.  Runs without aging are included too, labelled with a large
finite horizon -- "we have trained our model to declare that the time until
crash is 3 hours (standing for 'very long' or 'infinite') when there is no
aging" (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.features import DEFAULT_WINDOW, FeatureCatalog
from repro.testbed.monitoring.collector import Trace

__all__ = ["AgingDataset", "build_dataset", "build_feature_frame", "INFINITE_TTF_SECONDS"]

#: The paper's "infinite" time-to-failure label (3 hours) for healthy runs.
INFINITE_TTF_SECONDS = 10_800.0


@dataclass
class AgingDataset:
    """Feature matrix, TTF targets and bookkeeping for one or more traces.

    Attributes
    ----------
    features:
        2-D matrix with one row per monitoring mark.
    targets:
        True time to failure (seconds) of each row.
    feature_names:
        Column names, aligned with ``features``.
    times:
        Simulation timestamp of each row (useful for PRE/POST splits).
    trace_ids:
        Index of the source trace of each row (rows from several runs are
        concatenated, as in the paper's multi-execution training sets).
    """

    features: np.ndarray
    targets: np.ndarray
    feature_names: list[str]
    times: np.ndarray
    trace_ids: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))

    def __post_init__(self) -> None:
        if self.features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        rows = self.features.shape[0]
        if self.targets.shape != (rows,):
            raise ValueError("targets must have one value per feature row")
        if self.times.shape != (rows,):
            raise ValueError("times must have one value per feature row")
        if len(self.feature_names) != self.features.shape[1]:
            raise ValueError("feature_names must match the number of feature columns")
        if self.trace_ids.size == 0:
            self.trace_ids = np.zeros(rows, dtype=int)
        if self.trace_ids.shape != (rows,):
            raise ValueError("trace_ids must have one value per feature row")

    @property
    def num_instances(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    def select_features(self, indices: Sequence[int]) -> "AgingDataset":
        """Return a copy restricted to the given feature columns."""
        index_list = list(indices)
        if not index_list:
            raise ValueError("at least one feature must be selected")
        return AgingDataset(
            features=self.features[:, index_list],
            targets=self.targets.copy(),
            feature_names=[self.feature_names[i] for i in index_list],
            times=self.times.copy(),
            trace_ids=self.trace_ids.copy(),
        )

    def select_feature_names(self, names: Sequence[str]) -> "AgingDataset":
        """Return a copy restricted to the named feature columns."""
        missing = [name for name in names if name not in self.feature_names]
        if missing:
            raise KeyError(f"unknown feature names: {missing}")
        indices = [self.feature_names.index(name) for name in names]
        return self.select_features(indices)

    @staticmethod
    def concatenate(datasets: Sequence["AgingDataset"]) -> "AgingDataset":
        """Stack several datasets (they must share the same feature columns)."""
        if not datasets:
            raise ValueError("cannot concatenate zero datasets")
        names = datasets[0].feature_names
        for dataset in datasets[1:]:
            if dataset.feature_names != names:
                raise ValueError("datasets have different feature columns")
        offset = 0
        trace_ids = []
        for dataset in datasets:
            trace_ids.append(dataset.trace_ids + offset)
            offset += int(dataset.trace_ids.max()) + 1 if dataset.trace_ids.size else 0
        return AgingDataset(
            features=np.vstack([dataset.features for dataset in datasets]),
            targets=np.concatenate([dataset.targets for dataset in datasets]),
            feature_names=list(names),
            times=np.concatenate([dataset.times for dataset in datasets]),
            trace_ids=np.concatenate(trace_ids),
        )


def build_feature_frame(
    trace: Trace,
    window: int = DEFAULT_WINDOW,
    catalog: FeatureCatalog | None = None,
) -> tuple[np.ndarray, list[str]]:
    """Compute the Table 2 feature matrix of one trace.

    Thin wrapper over :class:`FeatureCatalog` so callers that only need the
    matrix do not have to instantiate the catalogue themselves.
    """
    active_catalog = catalog if catalog is not None else FeatureCatalog(window=window)
    return active_catalog.compute(trace)


def _label_trace(trace: Trace, infinite_ttf: float) -> np.ndarray:
    """Time-to-failure label of every sample of one trace."""
    if trace.crashed and trace.crash_time_seconds is not None:
        return trace.crash_time_seconds - trace.times()
    return np.full(len(trace), float(infinite_ttf))


def build_dataset(
    traces: Iterable[Trace],
    window: int = DEFAULT_WINDOW,
    catalog: FeatureCatalog | None = None,
    infinite_ttf: float = INFINITE_TTF_SECONDS,
) -> AgingDataset:
    """Build a training/evaluation dataset from one or more traces.

    Parameters
    ----------
    traces:
        Testbed traces; crashed traces are labelled with their true TTF,
        healthy traces with ``infinite_ttf``.
    window:
        Sliding-window length used for the derived variables.
    catalog:
        Optional pre-built :class:`FeatureCatalog` (shared across calls so
        training and test sets use identical columns).
    infinite_ttf:
        Label assigned to samples of non-crashing runs.
    """
    trace_list = list(traces)
    if not trace_list:
        raise ValueError("at least one trace is required")
    if infinite_ttf <= 0:
        raise ValueError("infinite_ttf must be positive")
    active_catalog = catalog if catalog is not None else FeatureCatalog(window=window)

    matrices: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    times: list[np.ndarray] = []
    trace_ids: list[np.ndarray] = []
    names: list[str] = []
    for index, trace in enumerate(trace_list):
        matrix, names = active_catalog.compute(trace)
        matrices.append(matrix)
        labels.append(_label_trace(trace, infinite_ttf))
        times.append(trace.times())
        trace_ids.append(np.full(len(trace), index, dtype=int))
    return AgingDataset(
        features=np.vstack(matrices),
        targets=np.concatenate(labels),
        feature_names=list(names),
        times=np.concatenate(times),
        trace_ids=np.concatenate(trace_ids),
    )
