"""Derived variables of Table 2: sliding-window speeds, inverses and ratios.

Section 2.2 of the paper explains the key feature-engineering decision: the
model is fed not only the raw metrics but a set of *derived* variables, "the
most important variable we add is the consumption speed from every resource
under monitoring", smoothed with a **sliding window average** so that noise
and short-lived fluctuations (GC activity, load spikes) do not dominate.
Table 2 then lists the whole derived-variable family: SWA variations
(speeds), speeds normalised by throughput, inverses of speeds, resource
values divided by their speed, and SWAs of selected raw metrics.

``FeatureCatalog`` reproduces that family.  Every feature carries a set of
*tags* (``heap``, ``memory``, ``threads``, ``workload``, ``system``) so the
expert feature selection of Experiment 4.3 -- "re-train the model only with
the variables related with the Java Heap evolution" -- is a one-liner.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.testbed.monitoring.collector import MonitoringSample, Trace

__all__ = [
    "DEFAULT_WINDOW",
    "FeatureCatalog",
    "FeatureSpec",
    "FeatureStream",
    "sliding_window_average",
    "consumption_speed",
    "safe_inverse",
]

#: Default sliding-window length in monitoring marks.  The paper mentions a
#: 12-mark window explicitly when discussing the adaptation delay of
#: Experiment 4.2 (12 marks x 15 seconds = 180 seconds).
DEFAULT_WINDOW = 12

#: Guard used by :func:`safe_inverse` against division by (near) zero.
_EPSILON = 1e-6


def sliding_window_average(values: Sequence[float], window: int) -> np.ndarray:
    """Causal moving average over the last ``window`` observations.

    The i-th output averages ``values[max(0, i - window + 1) .. i]``; early
    samples average whatever history exists, so the output has the same
    length as the input and uses no future information.
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    series = np.asarray(values, dtype=float)
    if series.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if series.size == 0:
        return np.zeros(0)
    cumulative = np.cumsum(series)
    output = np.empty_like(series)
    for index in range(series.shape[0]):
        start = max(0, index - window + 1)
        total = cumulative[index] - (cumulative[start - 1] if start > 0 else 0.0)
        output[index] = total / (index - start + 1)
    return output


def consumption_speed(times: Sequence[float], values: Sequence[float], window: int) -> np.ndarray:
    """Sliding-window-averaged consumption speed (units per second).

    The instantaneous speed at mark *i* is the difference with the previous
    mark divided by the elapsed time; the first mark has speed zero.  The
    instantaneous series is then smoothed with the sliding window average,
    exactly the smoothing role the paper assigns to the window.
    """
    times_arr = np.asarray(times, dtype=float)
    values_arr = np.asarray(values, dtype=float)
    if times_arr.shape != values_arr.shape:
        raise ValueError("times and values must have the same length")
    if times_arr.size == 0:
        return np.zeros(0)
    instantaneous = np.zeros_like(values_arr)
    if times_arr.size > 1:
        deltas = np.diff(times_arr)
        if np.any(deltas <= 0):
            raise ValueError("times must be strictly increasing")
        instantaneous[1:] = np.diff(values_arr) / deltas
    return sliding_window_average(instantaneous, window)


def safe_inverse(values: Sequence[float]) -> np.ndarray:
    """Element-wise ``1/x`` with near-zero values clamped to ``1/epsilon``.

    Table 2 uses ``1/SWA`` variables; when a resource is not being consumed
    the speed is zero and the plain inverse would be infinite.  Clamping to a
    large finite value preserves the "nothing is happening" signal without
    producing non-finite features.
    """
    series = np.asarray(values, dtype=float)
    clipped = np.where(np.abs(series) < _EPSILON, np.sign(series) * _EPSILON + (series == 0) * _EPSILON, series)
    return 1.0 / clipped


def _safe_inverse_scalar(value: float) -> float:
    """Scalar twin of :func:`safe_inverse` (bit-identical per element)."""
    if abs(value) < _EPSILON:
        value = _EPSILON if value >= 0 else -_EPSILON
    return 1.0 / value


@dataclass(frozen=True)
class FeatureSpec:
    """One derived (or raw) variable of the model input.

    Attributes
    ----------
    name:
        Unique feature name used in model descriptions and selection.
    tags:
        Resource tags used for expert feature selection.
    compute:
        Function mapping the raw-series dictionary (plus times) to the
        feature series.
    """

    name: str
    tags: frozenset[str]
    compute: Callable[[dict[str, np.ndarray], np.ndarray], np.ndarray]


#: Raw metric attribute -> resource tags.
_RAW_TAGS: dict[str, frozenset[str]] = {
    "throughput_rps": frozenset({"workload"}),
    "workload_ebs": frozenset({"workload"}),
    "response_time_s": frozenset({"workload", "system"}),
    "system_load": frozenset({"system"}),
    "disk_used_mb": frozenset({"system"}),
    "swap_free_mb": frozenset({"system", "memory"}),
    "num_processes": frozenset({"system", "threads"}),
    "system_memory_used_mb": frozenset({"memory", "system"}),
    "tomcat_memory_used_mb": frozenset({"memory"}),
    "num_threads": frozenset({"threads"}),
    "http_connections": frozenset({"workload"}),
    "mysql_connections": frozenset({"workload"}),
    "young_max_mb": frozenset({"heap", "memory"}),
    "old_max_mb": frozenset({"heap", "memory"}),
    "young_used_mb": frozenset({"heap", "memory"}),
    "old_used_mb": frozenset({"heap", "memory"}),
    "young_used_pct": frozenset({"heap", "memory"}),
    "old_used_pct": frozenset({"heap", "memory"}),
}

#: Resources whose consumption speed the paper derives (threads, Tomcat
#: memory, system memory and the two heap zones).
_SPEED_RESOURCES: dict[str, frozenset[str]] = {
    "num_threads": frozenset({"threads"}),
    "tomcat_memory_used_mb": frozenset({"memory"}),
    "system_memory_used_mb": frozenset({"memory", "system"}),
    "young_used_mb": frozenset({"heap", "memory"}),
    "old_used_mb": frozenset({"heap", "memory"}),
}

#: Raw metrics whose plain sliding-window average is also a feature
#: ("SWA Resource Used (4)" in Table 2).
_SWA_RAW_RESOURCES: tuple[str, ...] = (
    "response_time_s",
    "throughput_rps",
    "system_memory_used_mb",
    "tomcat_memory_used_mb",
)


class FeatureCatalog:
    """Builds the full Table 2 variable set from a testbed trace.

    Parameters
    ----------
    window:
        Sliding-window length in monitoring marks.
    include_raw / include_derived:
        Switch off either half of the catalogue (used by ablations measuring
        the value of the derived speed variables).
    """

    def __init__(self, window: int = DEFAULT_WINDOW, include_raw: bool = True, include_derived: bool = True) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if not include_raw and not include_derived:
            raise ValueError("at least one of include_raw / include_derived must be true")
        self.window = window
        self.include_raw = include_raw
        self.include_derived = include_derived
        self._specs = self._build_specs()

    # --------------------------------------------------------------- catalogue

    def _build_specs(self) -> list[FeatureSpec]:
        specs: list[FeatureSpec] = []
        if self.include_raw:
            for attribute, tags in _RAW_TAGS.items():
                specs.append(
                    FeatureSpec(
                        name=attribute,
                        tags=tags,
                        compute=lambda raw, times, attribute=attribute: raw[attribute],
                    )
                )
        if not self.include_derived:
            return specs
        window = self.window

        def speed_of(attribute: str) -> Callable[[dict[str, np.ndarray], np.ndarray], np.ndarray]:
            return lambda raw, times: consumption_speed(times, raw[attribute], window)

        for attribute, tags in _SPEED_RESOURCES.items():
            speed = speed_of(attribute)
            specs.append(FeatureSpec(f"swa_speed[{attribute}]", tags, speed))
            specs.append(
                FeatureSpec(
                    f"inv_swa_speed[{attribute}]",
                    tags,
                    lambda raw, times, speed=speed: safe_inverse(speed(raw, times)),
                )
            )
            specs.append(
                FeatureSpec(
                    f"swa_speed_per_throughput[{attribute}]",
                    tags | frozenset({"workload"}),
                    lambda raw, times, speed=speed: speed(raw, times) / np.maximum(raw["throughput_rps"], _EPSILON),
                )
            )
            specs.append(
                FeatureSpec(
                    f"inv_swa_speed_per_throughput[{attribute}]",
                    tags | frozenset({"workload"}),
                    lambda raw, times, speed=speed: safe_inverse(speed(raw, times))
                    / np.maximum(raw["throughput_rps"], _EPSILON),
                )
            )
            specs.append(
                FeatureSpec(
                    f"used_per_swa_speed[{attribute}]",
                    tags,
                    lambda raw, times, speed=speed, attribute=attribute: raw[attribute]
                    * safe_inverse(speed(raw, times)),
                )
            )
            specs.append(
                FeatureSpec(
                    f"used_per_swa_speed_per_throughput[{attribute}]",
                    tags | frozenset({"workload"}),
                    lambda raw, times, speed=speed, attribute=attribute: raw[attribute]
                    * safe_inverse(speed(raw, times))
                    / np.maximum(raw["throughput_rps"], _EPSILON),
                )
            )
        for attribute in _SWA_RAW_RESOURCES:
            specs.append(
                FeatureSpec(
                    f"swa[{attribute}]",
                    _RAW_TAGS[attribute],
                    lambda raw, times, attribute=attribute: sliding_window_average(raw[attribute], self.window),
                )
            )
        return specs

    # --------------------------------------------------------------- interface

    @property
    def feature_names(self) -> list[str]:
        return [spec.name for spec in self._specs]

    @property
    def feature_tags(self) -> dict[str, frozenset[str]]:
        return {spec.name: spec.tags for spec in self._specs}

    def __len__(self) -> int:
        return len(self._specs)

    def compute(self, trace: Trace) -> tuple[np.ndarray, list[str]]:
        """Compute the feature matrix of a trace.

        Returns ``(matrix, names)`` where the matrix has one row per
        monitoring sample and one column per catalogue feature.  Raises
        ``ValueError`` for empty traces.
        """
        if len(trace) == 0:
            raise ValueError("cannot compute features of an empty trace")
        times = trace.times()
        raw = {attribute: trace.series(attribute) for attribute in _RAW_TAGS}
        columns = [spec.compute(raw, times) for spec in self._specs]
        matrix = np.column_stack(columns)
        if not np.all(np.isfinite(matrix)):
            raise ValueError("feature computation produced non-finite values")
        return matrix, self.feature_names

    def stream(self) -> "FeatureStream":
        """Open an incremental computer of this catalogue's feature rows."""
        return FeatureStream(self)


class FeatureStream:
    """Incremental, O(window) computation of the newest feature row.

    :meth:`FeatureCatalog.compute` is a batch transform: every call rebuilds
    the whole matrix from the whole trace, which turns a streaming consumer
    (one prediction per monitoring mark) into an O(n^2) loop.  ``FeatureStream``
    maintains just enough state -- running cumulative sums of each smoothed
    series plus a ``window + 1`` deque of their historical values -- to emit,
    per pushed sample, a row that is **bit-for-bit identical** to the last row
    ``compute()`` would produce on the full history.

    Bit-exactness is load-bearing (tree models route on ulp-level splits), so
    every operation mirrors the batch path operation-for-operation:
    ``np.cumsum`` accumulates sequentially in float64, and so do the running
    sums here; window totals subtract the same cumulative values the batch
    loop reads; the scalar inverse replicates :func:`safe_inverse` branch by
    branch.
    """

    def __init__(self, catalog: FeatureCatalog) -> None:
        self.catalog = catalog
        window = catalog.window
        self._index = -1
        self._last_time = 0.0
        self._prev_values: dict[str, float] = {}
        # Sliding-window-average state per smoothed series: the running
        # cumulative sum (float64, sequential adds like np.cumsum) and the
        # last window+1 cumulative values (cum[i-window] is the subtrahend).
        self._speed_cum: dict[str, float] = {attr: 0.0 for attr in _SPEED_RESOURCES}
        self._speed_hist: dict[str, deque[float]] = {
            attr: deque(maxlen=window + 1) for attr in _SPEED_RESOURCES
        }
        self._swa_cum: dict[str, float] = {attr: 0.0 for attr in _SWA_RAW_RESOURCES}
        self._swa_hist: dict[str, deque[float]] = {
            attr: deque(maxlen=window + 1) for attr in _SWA_RAW_RESOURCES
        }

    @property
    def num_pushed(self) -> int:
        return self._index + 1

    def _swa_push(self, cum: float, hist: deque[float], window: int) -> float:
        """One sliding_window_average step; returns the average at this index."""
        hist.append(cum)
        index = self._index
        if index >= window:
            # start > 0: subtract cum[index - window], denominator is `window`.
            return (cum - hist[0]) / window
        return cum / (index + 1)

    def push(self, sample: MonitoringSample) -> np.ndarray:
        """Ingest one monitoring sample; return the catalogue row at its mark."""
        time_seconds = float(sample.time_seconds)
        if self._index >= 0 and time_seconds <= self._last_time:
            raise ValueError("times must be strictly increasing")
        self._index += 1
        window = self.catalog.window
        raw = {attribute: float(getattr(sample, attribute)) for attribute in _RAW_TAGS}

        row: list[float] = []
        if self.catalog.include_raw:
            for attribute in _RAW_TAGS:
                row.append(raw[attribute])
        if self.catalog.include_derived:
            throughput = max(raw["throughput_rps"], _EPSILON)
            for attribute in _SPEED_RESOURCES:
                value = raw[attribute]
                if self._index == 0:
                    instantaneous = 0.0
                else:
                    instantaneous = (value - self._prev_values[attribute]) / (
                        time_seconds - self._last_time
                    )
                cum = self._speed_cum[attribute] + instantaneous
                self._speed_cum[attribute] = cum
                speed = self._swa_push(cum, self._speed_hist[attribute], window)
                inverse = _safe_inverse_scalar(speed)
                row.append(speed)
                row.append(inverse)
                row.append(speed / throughput)
                row.append(inverse / throughput)
                row.append(value * inverse)
                row.append(value * inverse / throughput)
            for attribute in _SWA_RAW_RESOURCES:
                cum = self._swa_cum[attribute] + raw[attribute]
                self._swa_cum[attribute] = cum
                row.append(self._swa_push(cum, self._swa_hist[attribute], window))

        for attribute in _SPEED_RESOURCES:
            self._prev_values[attribute] = raw[attribute]
        self._last_time = time_seconds
        result = np.array(row, dtype=float)
        if not np.all(np.isfinite(result)):
            raise ValueError("feature computation produced non-finite values")
        return result
