"""Root-cause clues from the structure of the learned model tree.

Section 4.4 of the paper closes with an observation the authors found "most
important": inspecting the M5P tree of the two-resource experiment, the root
node tests the system memory and the second level tests the number of
threads -- "only with the first two levels of the tree we can observe how
memory usage and the threads are important variables, which gives
administrators or developers a clue on the root cause of the failure".

``analyse_root_cause`` mechanises that inspection: it ranks the variables the
tree tests (shallower and more frequent tests score higher), maps every
variable to the resource it monitors and reports the implicated resources in
order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.features import FeatureCatalog
from repro.ml.m5p import M5PModelTree
from repro.ml.regression_tree import RegressionTree

__all__ = ["RootCauseReport", "VariableImportance", "analyse_root_cause"]

#: Tags that correspond to a physical resource an administrator would act on.
_RESOURCE_TAGS = ("memory", "threads", "heap", "workload", "system")


@dataclass(frozen=True)
class VariableImportance:
    """Importance of one variable derived from the tree structure."""

    name: str
    shallowest_depth: int
    split_count: int
    score: float


@dataclass(frozen=True)
class RootCauseReport:
    """Ranked variables and resources implicated by the model tree."""

    variables: tuple[VariableImportance, ...]
    resources: tuple[tuple[str, float], ...]

    @property
    def primary_resource(self) -> str:
        """The resource with the highest aggregate score."""
        if not self.resources:
            return "unknown"
        return self.resources[0][0]

    def summary(self) -> str:
        """Human-readable summary of the inspection."""
        if not self.variables:
            return "the model tree has no splits; no root-cause clue available"
        top_variables = ", ".join(variable.name for variable in self.variables[:3])
        ranked_resources = ", ".join(f"{name} ({score:.2f})" for name, score in self.resources)
        return f"top split variables: {top_variables}; implicated resources: {ranked_resources}"


def _depth_score(depth: int) -> float:
    """Shallower splits carry exponentially more weight (root counts most)."""
    return 2.0 ** (-depth)


def analyse_root_cause(
    model: M5PModelTree | RegressionTree,
    catalog: FeatureCatalog | None = None,
) -> RootCauseReport:
    """Inspect a fitted tree model and rank the implicated resources.

    Parameters
    ----------
    model:
        A fitted :class:`M5PModelTree` or :class:`RegressionTree`.
    catalog:
        Feature catalogue used to map variable names to resource tags; the
        default catalogue covers every Table 2 variable name.
    """
    if not model.is_fitted:
        raise ValueError("the model must be fitted before root-cause analysis")
    active_catalog = catalog if catalog is not None else FeatureCatalog()
    tags_by_name = active_catalog.feature_tags

    counts = model.split_attribute_counts()
    levels = model.split_attribute_levels()

    variables = []
    for name, count in counts.items():
        depth = levels.get(name, 0)
        score = count * _depth_score(depth)
        variables.append(VariableImportance(name=name, shallowest_depth=depth, split_count=count, score=score))
    variables.sort(key=lambda item: (item.score, -item.shallowest_depth), reverse=True)

    resource_scores: dict[str, float] = {}
    for variable in variables:
        tags = tags_by_name.get(variable.name, frozenset())
        for tag in tags:
            if tag in _RESOURCE_TAGS:
                resource_scores[tag] = resource_scores.get(tag, 0.0) + variable.score
    ranked_resources = tuple(sorted(resource_scores.items(), key=lambda item: item[1], reverse=True))
    return RootCauseReport(variables=tuple(variables), resources=ranked_resources)
