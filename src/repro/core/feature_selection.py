"""Feature selection: expert variable groups and correlation ranking.

Experiment 4.3 of the paper obtains poor results with the full variable set
("the model was paying too much attention to irrelevant attributes") and,
following Hoffmann, Trivedi & Malek's best-practice guide, re-trains on an
expert-selected subset: "only the variables related with the Java Heap
evolution".  This module provides that expert selection (via the feature
tags of :class:`repro.core.features.FeatureCatalog`) plus a simple
correlation-based automatic ranking usable when no expert is available.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.dataset import AgingDataset
from repro.core.features import FeatureCatalog

__all__ = [
    "VARIABLE_GROUPS",
    "select_by_group",
    "select_heap_variables",
    "correlation_ranking",
    "top_k_features",
]

#: Named expert variable groups: group name -> tag that features must carry.
VARIABLE_GROUPS: dict[str, str] = {
    "heap": "heap",
    "memory": "memory",
    "threads": "threads",
    "workload": "workload",
    "system": "system",
}


def select_by_group(group: str, catalog: FeatureCatalog | None = None) -> list[str]:
    """Names of the catalogue features tagged with ``group``.

    ``group`` must be one of :data:`VARIABLE_GROUPS`; the result preserves the
    catalogue order so selected datasets remain column-stable.
    """
    if group not in VARIABLE_GROUPS:
        valid = ", ".join(sorted(VARIABLE_GROUPS))
        raise KeyError(f"unknown variable group {group!r}; valid groups: {valid}")
    active_catalog = catalog if catalog is not None else FeatureCatalog()
    tag = VARIABLE_GROUPS[group]
    return [name for name, tags in active_catalog.feature_tags.items() if tag in tags]


def select_heap_variables(catalog: FeatureCatalog | None = None) -> list[str]:
    """The Experiment 4.3 expert selection: Java-Heap-related variables only."""
    return select_by_group("heap", catalog)


def correlation_ranking(dataset: AgingDataset) -> list[tuple[str, float]]:
    """Rank features by absolute Pearson correlation with the TTF target.

    Constant features get a correlation of zero.  The returned list is sorted
    from the most to the least correlated feature.
    """
    targets = dataset.targets
    target_std = float(np.std(targets))
    rankings: list[tuple[str, float]] = []
    for index, name in enumerate(dataset.feature_names):
        column = dataset.features[:, index]
        column_std = float(np.std(column))
        if column_std <= 1e-12 or target_std <= 1e-12:
            rankings.append((name, 0.0))
            continue
        covariance = float(np.mean((column - column.mean()) * (targets - targets.mean())))
        rankings.append((name, abs(covariance / (column_std * target_std))))
    rankings.sort(key=lambda item: item[1], reverse=True)
    return rankings


def top_k_features(dataset: AgingDataset, k: int) -> list[str]:
    """Names of the ``k`` features most correlated with the target."""
    if k < 1:
        raise ValueError("k must be at least 1")
    ranking = correlation_ranking(dataset)
    return [name for name, _score in ranking[:k]]
