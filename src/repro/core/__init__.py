"""The paper's prediction framework.

This package turns testbed traces into the Table 2 variable set (raw metrics
plus sliding-window-average derived variables), labels every monitoring mark
with its true time to failure, trains the chosen learner and evaluates
predictions with the paper's accuracy measures (MAE, S-MAE, PRE-MAE and
POST-MAE).  It also hosts the pieces around the headline result: expert
feature selection (Experiment 4.3), root-cause analysis from the learned tree
(Section 4.4), the online adaptive monitor and the prediction-board ensemble
sketched as future work.
"""

from repro.core.dataset import AgingDataset, build_dataset, build_feature_frame
from repro.core.ensemble import PredictionBoard
from repro.core.evaluation import PredictionEvaluation, evaluate_predictions, format_duration
from repro.core.feature_selection import (
    VARIABLE_GROUPS,
    correlation_ranking,
    select_by_group,
    select_heap_variables,
)
from repro.core.features import (
    DEFAULT_WINDOW,
    FeatureCatalog,
    consumption_speed,
    safe_inverse,
    sliding_window_average,
)
from repro.core.online import OnlineAgingMonitor, OnlinePrediction
from repro.core.predictor import AgingPredictor
from repro.core.root_cause import RootCauseReport, analyse_root_cause

__all__ = [
    "AgingDataset",
    "AgingPredictor",
    "DEFAULT_WINDOW",
    "FeatureCatalog",
    "OnlineAgingMonitor",
    "OnlinePrediction",
    "PredictionBoard",
    "PredictionEvaluation",
    "RootCauseReport",
    "VARIABLE_GROUPS",
    "analyse_root_cause",
    "build_dataset",
    "build_feature_frame",
    "consumption_speed",
    "correlation_ranking",
    "evaluate_predictions",
    "format_duration",
    "safe_inverse",
    "select_by_group",
    "select_heap_variables",
    "sliding_window_average",
]
