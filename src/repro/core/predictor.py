"""The ``AgingPredictor`` facade: train on failure runs, predict time to failure.

This is the user-facing entry point of the reproduction.  It bundles the
feature catalogue, the dataset builder, the chosen learner (M5P by default,
linear regression and the regression tree as baselines) and the paper's
evaluation measures behind a small API::

    predictor = AgingPredictor(model="m5p")
    predictor.fit(training_traces)
    predictions = predictor.predict_trace(test_trace)
    evaluation = predictor.evaluate_trace(test_trace)
    print(evaluation.summary())

The model-size attributes (leaves, inner nodes, training instances) mirror
the figures the paper reports for every experiment.
"""

from __future__ import annotations

from typing import Iterable, Literal, Sequence

import numpy as np

from repro.core.dataset import INFINITE_TTF_SECONDS, AgingDataset, build_dataset
from repro.core.evaluation import PredictionEvaluation, evaluate_predictions
from repro.core.features import DEFAULT_WINDOW, FeatureCatalog, FeatureStream
from repro.ml.linear_regression import LinearRegressionModel
from repro.ml.m5p import M5PModelTree
from repro.ml.regression_tree import RegressionTree
from repro.testbed.monitoring.collector import Trace

__all__ = ["AgingPredictor"]

ModelName = Literal["m5p", "linear", "tree"]


class AgingPredictor:
    """Time-to-failure predictor built on the Table 2 variable set.

    Parameters
    ----------
    model:
        ``"m5p"`` (the paper's choice), ``"linear"`` (the baseline of Tables 3
        and 4) or ``"tree"`` (the plain regression tree of [14]).
    window:
        Sliding-window length for the derived variables, in monitoring marks.
    min_instances:
        Minimum training instances per leaf for the tree-based learners (the
        paper uses 10).
    min_std_fraction:
        Purity floor of the tree growers: a node stops splitting once its
        target standard deviation falls below this fraction of the root's
        (0.05 in M5').  Lifecycle challengers lower it, because live windows
        mix "infinite horizon" labels with near-crash countdowns and the
        inflated root deviation would otherwise leave the countdown region
        unsplit.
    feature_names:
        Optional subset of Table 2 variables to train on; this is how the
        expert feature selection of Experiment 4.3 is expressed.
    infinite_ttf:
        Label used for non-crashing training runs (3 hours in the paper).
    clip_predictions:
        Clamp predictions to ``[0, infinite_ttf]``; a predicted time to
        failure cannot be negative and anything beyond the "infinite" horizon
        means "no aging detected".
    """

    def __init__(
        self,
        model: ModelName = "m5p",
        window: int = DEFAULT_WINDOW,
        min_instances: int = 10,
        min_std_fraction: float = 0.05,
        feature_names: Sequence[str] | None = None,
        infinite_ttf: float = INFINITE_TTF_SECONDS,
        clip_predictions: bool = True,
    ) -> None:
        if model not in ("m5p", "linear", "tree"):
            raise ValueError(f"unknown model {model!r}; expected 'm5p', 'linear' or 'tree'")
        if min_instances < 1:
            raise ValueError("min_instances must be at least 1")
        if not 0.0 <= min_std_fraction < 1.0:
            raise ValueError("min_std_fraction must be in [0, 1)")
        if infinite_ttf <= 0:
            raise ValueError("infinite_ttf must be positive")
        self.model_name: ModelName = model
        self.window = window
        self.min_instances = min_instances
        self.min_std_fraction = min_std_fraction
        self.requested_features = list(feature_names) if feature_names is not None else None
        self.infinite_ttf = float(infinite_ttf)
        self.clip_predictions = clip_predictions

        self._catalog = FeatureCatalog(window=window)
        self._model: M5PModelTree | LinearRegressionModel | RegressionTree | None = None
        self._training_dataset: AgingDataset | None = None
        self._selected_names: list[str] = []
        self._selected_indices: list[int] | None = None

    # ------------------------------------------------------------------- fit

    def fit(self, traces: Iterable[Trace]) -> "AgingPredictor":
        """Train on one or more (typically crashed) testbed traces."""
        dataset = build_dataset(traces, catalog=self._catalog, infinite_ttf=self.infinite_ttf)
        return self.fit_dataset(dataset)

    def fit_dataset(self, dataset: AgingDataset) -> "AgingPredictor":
        """Train on a pre-built dataset (used by experiments and ablations)."""
        if self.requested_features is not None:
            dataset = dataset.select_feature_names(self.requested_features)
        self._selected_names = list(dataset.feature_names)
        self._model = self._build_model(self._selected_names)
        self._model.fit(dataset.features, dataset.targets)
        self._training_dataset = dataset
        self._selected_indices = None
        return self

    def _build_model(self, names: list[str]) -> M5PModelTree | LinearRegressionModel | RegressionTree:
        if self.model_name == "m5p":
            return M5PModelTree(
                min_instances=self.min_instances,
                min_std_fraction=self.min_std_fraction,
                attribute_names=names,
            )
        if self.model_name == "linear":
            return LinearRegressionModel(attribute_names=names)
        return RegressionTree(
            min_samples_leaf=self.min_instances,
            min_variance_fraction=self.min_std_fraction,
            attribute_names=names,
        )

    # --------------------------------------------------------------- predict

    def predict_trace(self, trace: Trace) -> np.ndarray:
        """Predict the time to failure at every monitoring mark of a trace."""
        model = self._require_fitted()
        matrix, names = self._catalog.compute(trace)
        if self.requested_features is not None:
            indices = [names.index(name) for name in self._selected_names]
            matrix = matrix[:, indices]
        predictions = model.predict(matrix)
        if self.clip_predictions:
            predictions = np.clip(predictions, 0.0, self.infinite_ttf)
        return predictions

    def feature_stream(self) -> "FeatureStream":
        """Open an incremental computer of this predictor's feature rows.

        Push monitoring samples into the stream and hand each returned row to
        :meth:`predict_row`; the pair replays :meth:`predict_trace`'s newest
        prediction bit-for-bit at O(window) per mark instead of O(history).
        """
        return self._catalog.stream()

    def predict_row(self, row: np.ndarray) -> float:
        """Predict the time to failure of one catalogue-ordered feature row.

        ``row`` must come from :meth:`feature_stream` (full catalogue order);
        feature selection and clipping are applied exactly as in
        :meth:`predict_trace`, and every model predicts rows independently,
        so the result matches the batch path's last value bit-for-bit.
        """
        model = self._require_fitted()
        if self.requested_features is not None:
            if self._selected_indices is None:
                names = self._catalog.feature_names
                self._selected_indices = [names.index(name) for name in self._selected_names]
            row = row[self._selected_indices]
        predictions = model.predict(row.reshape(1, -1))
        if self.clip_predictions:
            predictions = np.clip(predictions, 0.0, self.infinite_ttf)
        return float(predictions[0])

    def predict_matrix(self, rows: np.ndarray) -> np.ndarray:
        """Predict the time to failure of a batch of catalogue-ordered rows.

        The vectorized twin of :meth:`predict_row`: ``rows`` is a
        ``[marks, features]`` matrix in full catalogue order (one row per
        node or per mark), feature selection and clipping apply exactly as
        in :meth:`predict_trace`.  The fluid cluster engine predicts every
        due node's mark through this in one call.
        """
        model = self._require_fitted()
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2:
            raise ValueError("rows must be a 2-D [marks, features] matrix")
        if self.requested_features is not None:
            if self._selected_indices is None:
                names = self._catalog.feature_names
                self._selected_indices = [names.index(name) for name in self._selected_names]
            rows = rows[:, self._selected_indices]
        predictions = model.predict(rows)
        if self.clip_predictions:
            predictions = np.clip(predictions, 0.0, self.infinite_ttf)
        return predictions

    def predict_dataset(self, dataset: AgingDataset) -> np.ndarray:
        """Predict the targets of a pre-built dataset (column-aligned)."""
        model = self._require_fitted()
        if dataset.feature_names != self._selected_names:
            dataset = dataset.select_feature_names(self._selected_names)
        predictions = model.predict(dataset.features)
        if self.clip_predictions:
            predictions = np.clip(predictions, 0.0, self.infinite_ttf)
        return predictions

    # -------------------------------------------------------------- evaluate

    def evaluate_trace(self, trace: Trace, **evaluation_kwargs) -> PredictionEvaluation:
        """Predict a crashed trace and score it with MAE / S-MAE / PRE / POST."""
        if not trace.crashed or trace.crash_time_seconds is None:
            raise ValueError("evaluation requires a crashed trace with a known crash time")
        predictions = self.predict_trace(trace)
        return evaluate_predictions(
            times=trace.times(),
            true_ttf=trace.time_to_failure(),
            predicted_ttf=predictions,
            crash_time=trace.crash_time_seconds,
            **evaluation_kwargs,
        )

    # ------------------------------------------------------------ inspection

    def _require_fitted(self):
        if self._model is None:
            raise RuntimeError("the predictor has not been fitted yet")
        return self._model

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def catalog(self) -> FeatureCatalog:
        """The Table 2 feature catalogue (shared so retrained models align columns)."""
        return self._catalog

    @property
    def model(self) -> M5PModelTree | LinearRegressionModel | RegressionTree:
        """The underlying fitted learner (for inspection and root-cause analysis)."""
        return self._require_fitted()

    @property
    def feature_names(self) -> list[str]:
        """Names of the features the model was actually trained on."""
        self._require_fitted()
        return list(self._selected_names)

    @property
    def training_dataset(self) -> AgingDataset:
        """The dataset the model was fitted on (for clones and retraining)."""
        if self._training_dataset is None:
            raise RuntimeError("the predictor has not been fitted yet")
        return self._training_dataset

    @property
    def num_training_instances(self) -> int:
        return self.training_dataset.num_instances

    @property
    def num_leaves(self) -> int | None:
        """Leaves of the fitted tree model (``None`` for linear regression)."""
        model = self._require_fitted()
        return model.num_leaves if hasattr(model, "num_leaves") else None

    @property
    def num_inner_nodes(self) -> int | None:
        """Inner nodes of the fitted tree model (``None`` for linear regression)."""
        model = self._require_fitted()
        return model.num_inner_nodes if hasattr(model, "num_inner_nodes") else None

    def describe_model(self) -> str:
        """Human-readable rendering of the fitted model."""
        return self._require_fitted().describe()
