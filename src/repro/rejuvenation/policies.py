"""Rejuvenation policies: when should the server be restarted?

A policy looks at the stream of monitoring samples (and, for the predictive
policy, at the aging predictor's output) and decides at every mark whether to
rejuvenate now.  The simulator in :mod:`repro.rejuvenation.simulator` charges
every rejuvenation a fixed downtime and charges a crash a much larger one,
which is exactly the trade-off the paper's introduction describes.
"""

from __future__ import annotations

import abc

from repro.core.predictor import AgingPredictor
from repro.testbed.monitoring.collector import MonitoringSample, Trace

__all__ = [
    "RejuvenationPolicy",
    "NoRejuvenationPolicy",
    "TimeBasedRejuvenationPolicy",
    "PredictiveRejuvenationPolicy",
]


class RejuvenationPolicy(abc.ABC):
    """Decides, mark by mark, whether to trigger a rejuvenation action."""

    @abc.abstractmethod
    def should_rejuvenate(self, sample: MonitoringSample, history: Trace) -> bool:
        """Return True to restart the server right after ``sample``."""

    def notify_rejuvenation(self, time_seconds: float) -> None:
        """Called by the simulator after a rejuvenation completes."""

    def describe(self) -> str:
        return type(self).__name__


class NoRejuvenationPolicy(RejuvenationPolicy):
    """Never rejuvenate: the run ends with the crash (the paper's baseline)."""

    def should_rejuvenate(self, sample: MonitoringSample, history: Trace) -> bool:
        return False


class TimeBasedRejuvenationPolicy(RejuvenationPolicy):
    """Rejuvenate after a fixed amount of server uptime, aging or not.

    This is the strategy "widely used in real environments, such as web
    servers" that the paper wants to improve on: simple, but it restarts
    healthy servers and can still miss fast aging between two restarts.
    Sample times are measured from the server's (re)start, so the policy
    fires whenever the current uptime reaches the configured interval.
    """

    def __init__(self, interval_seconds: float) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = float(interval_seconds)

    def should_rejuvenate(self, sample: MonitoringSample, history: Trace) -> bool:
        return sample.time_seconds >= self.interval_seconds

    def describe(self) -> str:
        return f"TimeBasedRejuvenationPolicy(every {self.interval_seconds:.0f}s of uptime)"


class PredictiveRejuvenationPolicy(RejuvenationPolicy):
    """Rejuvenate when the predicted time to failure falls below a threshold.

    Parameters
    ----------
    predictor:
        A fitted :class:`AgingPredictor`; its prediction on the history seen
        so far is the policy's only input.
    threshold_seconds:
        Rejuvenate once the predicted time to failure is at or below this
        value (enough headroom to drain in-flight sessions).
    consecutive:
        Require this many consecutive below-threshold predictions, filtering
        out single-sample blips.
    """

    def __init__(self, predictor: AgingPredictor, threshold_seconds: float = 600.0, consecutive: int = 2) -> None:
        if not predictor.is_fitted:
            raise ValueError("the predictor must be fitted before driving a rejuvenation policy")
        if threshold_seconds <= 0:
            raise ValueError("threshold_seconds must be positive")
        if consecutive < 1:
            raise ValueError("consecutive must be at least 1")
        self.predictor = predictor
        self.threshold_seconds = float(threshold_seconds)
        self.consecutive = consecutive
        self._streak = 0

    def should_rejuvenate(self, sample: MonitoringSample, history: Trace) -> bool:
        predicted = float(self.predictor.predict_trace(history)[-1])
        if predicted <= self.threshold_seconds:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.consecutive

    def notify_rejuvenation(self, time_seconds: float) -> None:
        self._streak = 0

    def describe(self) -> str:
        return f"PredictiveRejuvenationPolicy(threshold {self.threshold_seconds:.0f}s)"
