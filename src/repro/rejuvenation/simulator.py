"""Availability simulation of rejuvenation policies on aging scenarios.

The simulator plays back freshly generated aging runs ("epochs") against a
policy.  Every epoch either ends in a **rejuvenation** (the policy fired: a
short, planned downtime) or in a **crash** (the policy missed it or chose not
to act: a long, unplanned downtime).  Epochs repeat until the requested
horizon of operation is covered, and the outcome aggregates uptime, downtime,
the number of restarts of each kind and the resulting availability -- the
quantities behind the paper's motivation that predictive rejuvenation reduces
both unplanned outages and unnecessary restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.rejuvenation.policies import RejuvenationPolicy
from repro.testbed.monitoring.collector import Trace

__all__ = ["RejuvenationOutcome", "simulate_policy"]

#: A factory that produces a fresh aging run for epoch ``index``.
TraceFactory = Callable[[int], Trace]


@dataclass(frozen=True)
class RejuvenationOutcome:
    """Aggregate result of operating one policy for a horizon."""

    policy_description: str
    horizon_seconds: float
    uptime_seconds: float
    planned_downtime_seconds: float
    unplanned_downtime_seconds: float
    crashes: int
    rejuvenations: int

    @property
    def downtime_seconds(self) -> float:
        return self.planned_downtime_seconds + self.unplanned_downtime_seconds

    @property
    def availability(self) -> float:
        """Fraction of the horizon the service was up."""
        total = self.uptime_seconds + self.downtime_seconds
        if total <= 0:
            return 0.0
        return self.uptime_seconds / total

    @property
    def unplanned_downtime_fraction(self) -> float:
        """Share of the downtime caused by crashes rather than planned restarts."""
        if self.downtime_seconds <= 0:
            return 0.0
        return self.unplanned_downtime_seconds / self.downtime_seconds

    def summary(self) -> str:
        return (
            f"{self.policy_description}: availability {self.availability:.4f}, "
            f"{self.crashes} crashes, {self.rejuvenations} rejuvenations, "
            f"{self.downtime_seconds / 60.0:.1f} min downtime over {self.horizon_seconds / 3600.0:.1f} h"
        )


def simulate_policy(
    policy: RejuvenationPolicy,
    trace_factory: TraceFactory,
    horizon_seconds: float,
    rejuvenation_downtime_seconds: float = 120.0,
    crash_downtime_seconds: float = 900.0,
    max_epochs: int = 200,
) -> RejuvenationOutcome:
    """Operate ``policy`` for ``horizon_seconds`` of service time.

    Parameters
    ----------
    policy:
        The rejuvenation policy under evaluation.
    trace_factory:
        Called with the epoch index to obtain a fresh aging run; the run
        describes how the server *would* age if never restarted.
    horizon_seconds:
        Total operation time to cover (uptime plus downtime).
    rejuvenation_downtime_seconds / crash_downtime_seconds:
        Penalty charged for a planned restart versus an unplanned crash
        (a clean restart is much cheaper than recovering from a hang).
    max_epochs:
        Safety bound on the number of epochs.
    """
    if horizon_seconds <= 0:
        raise ValueError("horizon_seconds must be positive")
    if rejuvenation_downtime_seconds <= 0 or crash_downtime_seconds <= 0:
        raise ValueError("downtimes must be positive")
    if max_epochs < 1:
        raise ValueError("max_epochs must be at least 1")

    elapsed = 0.0
    uptime = 0.0
    planned_downtime = 0.0
    unplanned_downtime = 0.0
    crashes = 0
    rejuvenations = 0
    epoch = 0
    while elapsed < horizon_seconds and epoch < max_epochs:
        trace = trace_factory(epoch)
        epoch += 1
        epoch_uptime, outcome = _play_epoch(policy, trace)
        remaining = horizon_seconds - elapsed
        if epoch_uptime >= remaining:
            # The horizon ends while this epoch is still running fine.
            uptime += remaining
            elapsed = horizon_seconds
            break
        uptime += epoch_uptime
        elapsed += epoch_uptime
        if outcome == "rejuvenated":
            rejuvenations += 1
            penalty = min(rejuvenation_downtime_seconds, horizon_seconds - elapsed)
            planned_downtime += penalty
            elapsed += penalty
            policy.notify_rejuvenation(epoch_uptime)
        elif outcome == "crashed":
            crashes += 1
            penalty = min(crash_downtime_seconds, horizon_seconds - elapsed)
            unplanned_downtime += penalty
            elapsed += penalty
        # "exhausted" epochs (the trace ended healthy) simply continue with a
        # fresh epoch and no downtime.
    return RejuvenationOutcome(
        policy_description=policy.describe(),
        horizon_seconds=horizon_seconds,
        uptime_seconds=uptime,
        planned_downtime_seconds=planned_downtime,
        unplanned_downtime_seconds=unplanned_downtime,
        crashes=crashes,
        rejuvenations=rejuvenations,
    )


def _play_epoch(policy: RejuvenationPolicy, trace: Trace) -> tuple[float, str]:
    """Play one epoch; return its uptime and how it ended.

    The outcome is ``"rejuvenated"`` when the policy fired, ``"crashed"``
    when the run reached its crash, and ``"exhausted"`` when the trace ended
    without either (a healthy run shorter than the horizon).
    """
    history = Trace(workload_ebs=trace.workload_ebs)
    for sample in trace:
        history.samples.append(sample)
        if policy.should_rejuvenate(sample, history):
            return sample.time_seconds, "rejuvenated"
    if trace.crashed and trace.crash_time_seconds is not None:
        return float(trace.crash_time_seconds), "crashed"
    return trace.duration_seconds, "exhausted"
