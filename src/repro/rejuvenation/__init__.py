"""Software-rejuvenation policies driven by (or compared against) the predictor.

The introduction of the paper contrasts two rejuvenation strategies:
**time-based** rejuvenation, applied blindly at fixed intervals, and
**predictive/proactive** rejuvenation, triggered only when a crash due to
software aging seems to approach.  The paper's conclusion (and its extended
technical report) motivates the predictor precisely as the trigger for such
proactive recovery.  This package implements both policies and a small
availability simulator so the trade-off (number of rejuvenations versus
downtime and lost work) can be measured on the same aging scenarios as the
prediction experiments.
"""

from repro.rejuvenation.policies import (
    NoRejuvenationPolicy,
    PredictiveRejuvenationPolicy,
    RejuvenationPolicy,
    TimeBasedRejuvenationPolicy,
)
from repro.rejuvenation.simulator import RejuvenationOutcome, simulate_policy

__all__ = [
    "NoRejuvenationPolicy",
    "PredictiveRejuvenationPolicy",
    "RejuvenationOutcome",
    "RejuvenationPolicy",
    "TimeBasedRejuvenationPolicy",
    "simulate_policy",
]
