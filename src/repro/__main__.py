"""``python -m repro`` — the unified experiment CLI (same as ``repro``).

``list`` / ``describe`` / ``run`` / ``batch`` / ``sweep`` / ``collect``;
see :mod:`repro.api.cli` for the full surface, including the parallel
``--workers`` orchestration and the content-addressed result cache behind
``batch`` and ``sweep``.
"""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
