"""Data series behind the paper's two motivating figures (Figures 1 and 2).

Figure 1 shows the memory actually used by the Java application under a
constant-rate leak and constant workload: the consumption is *not* linear
because the heap management system resizes the Old zone and releases memory
at a few points of the execution, buying the application extra minutes of
life a naive slope extrapolation would miss.

Figure 2 shows the same resource from two viewpoints during a benign
periodic acquire/release pattern: the JVM-level view (Young + Old occupancy)
waves up and down, while the OS-level view of the Tomcat process stays flat
because Linux does not take freed memory back from a process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.scenarios import ExperimentScenarios
from repro.testbed.engine import TestbedSimulation
from repro.testbed.faults.memory_leak import MemoryLeakInjector
from repro.testbed.faults.periodic import PeriodicPatternInjector

__all__ = ["Figure1Series", "Figure2Series", "figure1_series", "figure2_series"]


@dataclass
class Figure1Series:
    """Figure 1: nonlinear memory behaviour under a constant-rate leak."""

    time_seconds: np.ndarray
    os_memory_mb: np.ndarray
    jvm_heap_used_mb: np.ndarray
    old_resize_times: tuple[float, ...]
    crash_time_seconds: float

    def has_flat_zones(self, tolerance_mb: float = 0.5) -> bool:
        """Whether the OS-level signal contains flat (non-growing) stretches."""
        deltas = np.diff(self.os_memory_mb)
        return bool(np.mean(deltas < tolerance_mb) > 0.2)

    def extra_life_seconds(self) -> float:
        """Extra lifetime compared with extrapolating the initial slope.

        The paper quantifies the effect at "about 16 extra minutes" for its
        configuration: the initial consumption rate predicts an earlier
        exhaustion than what actually happens because full GCs reclaim the
        promoted garbage along the way.
        """
        quarter = max(len(self.time_seconds) // 4, 2)
        times = self.time_seconds[:quarter]
        values = self.os_memory_mb[:quarter]
        slope = float(np.polyfit(times, values, 1)[0])
        if slope <= 0:
            return 0.0
        capacity = float(self.os_memory_mb.max())
        naive_crash = times[0] + (capacity - values[0]) / slope
        return float(self.crash_time_seconds - naive_crash)


@dataclass
class Figure2Series:
    """Figure 2: OS-level versus JVM-level view of a periodic memory pattern."""

    time_seconds: np.ndarray
    os_memory_mb: np.ndarray
    jvm_heap_used_mb: np.ndarray
    phase_starts: tuple[float, ...]

    def os_view_is_flat_after_warmup(self, warmup_fraction: float = 0.3, tolerance_mb: float = 20.0) -> bool:
        """Whether the OS view stops moving once the first peak is reached."""
        start = int(len(self.time_seconds) * warmup_fraction)
        tail = self.os_memory_mb[start:]
        return float(tail.max() - tail.min()) <= tolerance_mb

    def jvm_view_oscillates(self, minimum_swing_mb: float = 10.0) -> bool:
        """Whether the JVM view shows the acquire/release waves."""
        start = len(self.time_seconds) // 3
        tail = self.jvm_heap_used_mb[start:]
        return float(tail.max() - tail.min()) >= minimum_swing_mb


def figure1_series(
    scenarios: ExperimentScenarios | None = None,
    engine: str = "event",
) -> Figure1Series:
    """Run the Figure 1 experiment: constant workload, constant-rate leak.

    ``engine`` selects the simulation engine (``"event"``, the default, or
    ``"per_second"``); both produce bit-for-bit identical seeded traces.
    """
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    simulation = TestbedSimulation(
        config=active.config,
        workload_ebs=active.workload_42,
        injectors=[MemoryLeakInjector(n=active.memory_n_41, seed=active.seed_for(500))],
        seed=active.seed_for(500),
    )
    trace = simulation.run(max_seconds=12 * 3600.0, engine=engine)
    if not trace.crashed:
        raise RuntimeError("the Figure 1 run did not crash; increase the leak rate")
    return Figure1Series(
        time_seconds=trace.times(),
        os_memory_mb=trace.series("tomcat_memory_used_mb"),
        jvm_heap_used_mb=trace.series("young_used_mb") + trace.series("old_used_mb"),
        old_resize_times=tuple(simulation.heap.collector.resize_times()),
        crash_time_seconds=float(trace.crash_time_seconds or trace.duration_seconds),
    )


def figure2_series(
    scenarios: ExperimentScenarios | None = None,
    num_cycles: int = 5,
    engine: str = "event",
) -> Figure2Series:
    """Run the Figure 2 experiment: benign periodic acquire/release pattern.

    The paper repeats the hourly pattern for five hours; ``num_cycles``
    controls how many normal/acquire/release cycles are simulated.
    ``engine`` selects the simulation engine as in :func:`figure1_series`.
    """
    if num_cycles < 1:
        raise ValueError("num_cycles must be at least 1")
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    injector = PeriodicPatternInjector(
        phase_duration_s=active.phase_seconds_43,
        acquire_n=active.acquire_n_43,
        release_n=max(active.acquire_n_43 // 2, 1),
        full_release=True,
        seed=active.seed_for(510),
    )
    simulation = TestbedSimulation(
        config=active.config,
        workload_ebs=active.workload_42,
        injectors=[injector],
        seed=active.seed_for(510),
    )
    duration = 3 * active.phase_seconds_43 * num_cycles
    trace = simulation.run(max_seconds=duration, engine=engine)
    return Figure2Series(
        time_seconds=trace.times(),
        os_memory_mb=trace.series("tomcat_memory_used_mb"),
        jvm_heap_used_mb=trace.series("young_used_mb") + trace.series("old_used_mb"),
        phase_starts=tuple(start for start, _phase in injector.phase_history),
    )
