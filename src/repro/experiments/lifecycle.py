"""The morphing-regime experiment: static champion versus managed lifecycle.

The scenario is the adaptation story the paper's Experiment 4.4 hints at but
never closes: a server ages under a plain memory leak -- exactly what the
deployed model was trained on -- and mid-run the fault *morphs* into a thread
leak the training set never contained.  The static champion keeps explaining
the world through memory speeds, sees the leak stop, and forecasts a long
healthy future while the thread pool marches toward exhaustion.  The managed
monitor (:class:`repro.lifecycle.ManagedOnlineMonitor`) sees its own
forecasts stop behaving like countdowns, declares drift, retrains a
challenger on the live window and recovers the TTF forecast before the crash.

Both monitors stream the *same* trace sample by sample, so the comparison
isolates the lifecycle: same data, same alarm rules, only the model
management differs.  Everything is seeded, so the drift marks, the gate
verdicts and the final error figures reproduce byte-for-byte on both
simulation engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.online import OnlineAgingMonitor
from repro.core.predictor import AgingPredictor
from repro.experiments.runner import (
    run_memory_leak_trace,
    run_no_injection_trace,
    run_two_resource_trace,
)
from repro.experiments.scenarios import ExperimentScenarios
from repro.lifecycle import LifecycleConfig, ManagedOnlineMonitor
from repro.testbed.monitoring.collector import Trace

__all__ = [
    "LifecycleExperimentResult",
    "run_lifecycle_experiment",
    "run_morphing_trace",
    "train_static_champion",
]


@dataclass
class LifecycleExperimentResult:
    """Outcome of the morphing-scenario comparison."""

    trace: Trace
    morph_time_seconds: float
    static_predictions: np.ndarray
    managed_predictions: np.ndarray
    static_mae: float
    managed_mae: float
    static_post_morph_mae: float
    managed_post_morph_mae: float
    drift_times: tuple[float, ...]
    promotion_times: tuple[float, ...]
    rejection_times: tuple[float, ...]
    generations: int

    def lifecycle_wins(self) -> bool:
        """Did the managed monitor beat the static champion after the morph?"""
        return self.managed_post_morph_mae < self.static_post_morph_mae

    @property
    def post_morph_improvement(self) -> float:
        """Post-morph MAE saved by the lifecycle (positive = lifecycle better)."""
        return self.static_post_morph_mae - self.managed_post_morph_mae

    def summary(self) -> str:
        lines = [
            f"morph at t={self.morph_time_seconds:.0f}s, "
            f"crash at t={self.trace.crash_time_seconds:.0f}s "
            f"({self.trace.crash_resource})",
            f"drifts at {[round(t) for t in self.drift_times]}, "
            f"promotions at {[round(t) for t in self.promotion_times]}, "
            f"rejections at {[round(t) for t in self.rejection_times]}",
            f"post-morph MAE: static {self.static_post_morph_mae:.0f}s, "
            f"managed {self.managed_post_morph_mae:.0f}s "
            f"(saved {self.post_morph_improvement:.0f}s)",
            f"overall MAE: static {self.static_mae:.0f}s, managed {self.managed_mae:.0f}s",
        ]
        return "\n".join(lines)


def train_static_champion(
    scenarios: ExperimentScenarios, engine: str = "event", model: str = "m5p"
) -> AgingPredictor:
    """Fit the deployed model on memory-regime history only.

    One healthy run plus one memory-leak run per Experiment 4.2 training rate
    -- a perfectly reasonable production training set that simply contains no
    thread-leak execution, which is what makes the morph a true drift.
    """
    traces = [
        run_no_injection_trace(
            scenarios.config,
            scenarios.workload_42,
            duration_seconds=scenarios.healthy_run_seconds,
            seed=scenarios.seed_for(300),
            engine=engine,
        )
    ]
    rates = [rate for rate in scenarios.training_rates_42 if rate is not None]
    for index, rate in enumerate(rates):
        traces.append(
            run_memory_leak_trace(
                scenarios.config,
                scenarios.workload_42,
                n=rate,
                seed=scenarios.seed_for(301 + index),
                max_seconds=scenarios.morph_max_seconds,
                engine=engine,
            )
        )
    return AgingPredictor(model=model).fit(traces)


def run_morphing_trace(scenarios: ExperimentScenarios, engine: str = "event") -> Trace:
    """One run that opens as a memory leak and morphs into a thread leak."""
    trace = run_two_resource_trace(
        scenarios.config,
        scenarios.workload_42,
        phases=[
            (0.0, scenarios.morph_memory_n, None, None),
            (scenarios.morph_time_seconds, None, scenarios.morph_thread_m, scenarios.morph_thread_t),
        ],
        seed=scenarios.seed_for(350),
        max_seconds=scenarios.morph_max_seconds,
        engine=engine,
    )
    if not trace.crashed:
        raise RuntimeError(
            "the morphing scenario must end in a crash; "
            "raise morph_max_seconds or the thread-leak rate"
        )
    return trace


def run_lifecycle_experiment(
    scenarios: ExperimentScenarios | None = None,
    engine: str = "event",
    config: LifecycleConfig | None = None,
    model: str = "m5p",
) -> LifecycleExperimentResult:
    """Stream the morphing trace through a static and a managed monitor."""
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    lifecycle_config = (config if config is not None else LifecycleConfig()).for_testbed(
        active.config
    )

    champion = train_static_champion(active, engine=engine, model=model)
    trace = run_morphing_trace(active, engine=engine)

    static = OnlineAgingMonitor(champion)
    managed = ManagedOnlineMonitor(
        # The managed monitor gets its own champion instance so a promotion
        # cannot leak model state into the static baseline.
        champion=AgingPredictor(model=model).fit_dataset(champion.training_dataset),
        config=lifecycle_config,
        run="lifecycle",
    )
    for sample in trace:
        static.observe(sample)
        managed.observe(sample)
    managed.note_outcome(trace)

    times = trace.times()
    true_ttf = trace.time_to_failure()
    static_predictions = static.predicted_series()
    managed_predictions = managed.predicted_series()
    post = times >= active.morph_time_seconds
    if not bool(np.any(post)):
        raise RuntimeError("no monitoring marks after the morph; lengthen the run")

    return LifecycleExperimentResult(
        trace=trace,
        morph_time_seconds=active.morph_time_seconds,
        static_predictions=static_predictions,
        managed_predictions=managed_predictions,
        static_mae=float(np.mean(np.abs(static_predictions - true_ttf))),
        managed_mae=float(np.mean(np.abs(managed_predictions - true_ttf))),
        static_post_morph_mae=float(np.mean(np.abs(static_predictions[post] - true_ttf[post]))),
        managed_post_morph_mae=float(
            np.mean(np.abs(managed_predictions[post] - true_ttf[post]))
        ),
        drift_times=tuple(e.time_seconds for e in managed.events("drift_detected")),
        promotion_times=tuple(e.time_seconds for e in managed.events("champion_promoted")),
        rejection_times=tuple(e.time_seconds for e in managed.events("challenger_rejected")),
        generations=managed.generation,
    )
