"""Trace-generation helpers shared by every experiment driver.

These functions wrap :class:`repro.testbed.engine.TestbedSimulation` with the
concrete fault configurations the paper uses: constant-rate memory leaks
(parameter ``N``), thread leaks (``M``, ``T``), the periodic acquire/release
pattern, schedules of mid-run rate changes, and plain no-injection runs.
Every helper is deterministic given its seed.

Each helper accepts an ``engine`` flag forwarded to
:meth:`TestbedSimulation.run`: ``"event"`` (the default) rides the shared
event-driven scheduler, ``"per_second"`` runs the retained tick-everything
reference.  Both produce bit-for-bit identical seeded traces, so the flag
only matters for wall-clock (training-set generation is the dominant cost
of the cluster experiments).
"""

from __future__ import annotations

from typing import Sequence

from repro.testbed.config import TestbedConfig
from repro.testbed.engine import ScheduledAction, TestbedSimulation
from repro.testbed.faults.memory_leak import MemoryLeakInjector
from repro.testbed.faults.periodic import PeriodicPatternInjector
from repro.testbed.faults.thread_leak import ThreadLeakInjector
from repro.testbed.monitoring.collector import Trace

__all__ = [
    "run_no_injection_trace",
    "run_memory_leak_trace",
    "run_thread_leak_trace",
    "run_dynamic_memory_trace",
    "run_periodic_pattern_trace",
    "run_two_resource_trace",
]

#: Generous default wall for runs that are expected to crash on their own.
_DEFAULT_MAX_SECONDS = 12 * 3600.0


def run_no_injection_trace(
    config: TestbedConfig,
    workload_ebs: int,
    duration_seconds: float = 3600.0,
    seed: int = 0,
    engine: str = "event",
) -> Trace:
    """A healthy run with no fault injection (the paper's one-hour baseline)."""
    simulation = TestbedSimulation(config=config, workload_ebs=workload_ebs, seed=seed)
    return simulation.run(max_seconds=duration_seconds, engine=engine)


def run_memory_leak_trace(
    config: TestbedConfig,
    workload_ebs: int,
    n: int,
    leak_mb: float = 1.0,
    seed: int = 0,
    max_seconds: float = _DEFAULT_MAX_SECONDS,
    engine: str = "event",
) -> Trace:
    """A run with the constant-rate, workload-coupled memory leak (Exp. 4.1)."""
    simulation = TestbedSimulation(
        config=config,
        workload_ebs=workload_ebs,
        injectors=[MemoryLeakInjector(n=n, leak_mb=leak_mb, seed=seed)],
        seed=seed,
    )
    return simulation.run(max_seconds=max_seconds, engine=engine)


def run_thread_leak_trace(
    config: TestbedConfig,
    workload_ebs: int,
    m: int,
    t: int,
    seed: int = 0,
    max_seconds: float = _DEFAULT_MAX_SECONDS,
    engine: str = "event",
) -> Trace:
    """A run with the workload-independent thread leak (Exp. 4.4 training)."""
    simulation = TestbedSimulation(
        config=config,
        workload_ebs=workload_ebs,
        injectors=[ThreadLeakInjector(m=m, t=t, seed=seed)],
        seed=seed,
    )
    return simulation.run(max_seconds=max_seconds, engine=engine)


def run_dynamic_memory_trace(
    config: TestbedConfig,
    workload_ebs: int,
    phases: Sequence[tuple[float, int | None]],
    leak_mb: float = 1.0,
    seed: int = 0,
    max_seconds: float = _DEFAULT_MAX_SECONDS,
    engine: str = "event",
) -> Trace:
    """A run whose memory-leak rate changes mid-run (Experiment 4.2).

    ``phases`` is a sequence of ``(start_time_seconds, n)`` pairs; ``n=None``
    means no injection during that phase.  The first phase should start at 0.
    """
    if not phases:
        raise ValueError("at least one phase is required")
    injector = MemoryLeakInjector(n=phases[0][1], leak_mb=leak_mb, seed=seed)
    schedule = [
        ScheduledAction(
            time_seconds=start,
            action=lambda sim, rate=n: injector.set_rate(rate),
            label=f"memory injection N={n}" if n is not None else "no injection",
        )
        for start, n in phases[1:]
    ]
    simulation = TestbedSimulation(
        config=config,
        workload_ebs=workload_ebs,
        injectors=[injector],
        schedule=schedule,
        seed=seed,
    )
    return simulation.run(max_seconds=max_seconds, engine=engine)


def run_periodic_pattern_trace(
    config: TestbedConfig,
    workload_ebs: int,
    phase_duration_s: float,
    acquire_n: int = 30,
    release_n: int = 75,
    full_release: bool = False,
    seed: int = 0,
    max_seconds: float = _DEFAULT_MAX_SECONDS,
    engine: str = "event",
) -> Trace:
    """A run with the periodic acquire/release pattern (Figure 2 / Exp. 4.3)."""
    injector = PeriodicPatternInjector(
        phase_duration_s=phase_duration_s,
        acquire_n=acquire_n,
        release_n=release_n,
        full_release=full_release,
        seed=seed,
    )
    simulation = TestbedSimulation(
        config=config,
        workload_ebs=workload_ebs,
        injectors=[injector],
        seed=seed,
    )
    return simulation.run(max_seconds=max_seconds, engine=engine)


def run_two_resource_trace(
    config: TestbedConfig,
    workload_ebs: int,
    phases: Sequence[tuple[float, int | None, int | None, int | None]],
    leak_mb: float = 1.0,
    seed: int = 0,
    max_seconds: float = _DEFAULT_MAX_SECONDS,
    engine: str = "event",
) -> Trace:
    """A run where memory and thread leaks are injected simultaneously (Exp. 4.4).

    ``phases`` entries are ``(start_time_seconds, n, m, t)``; ``None`` for
    ``n`` or ``m`` disables the corresponding injector during that phase.
    """
    if not phases:
        raise ValueError("at least one phase is required")
    first = phases[0]
    memory_injector = MemoryLeakInjector(n=first[1], leak_mb=leak_mb, seed=seed)
    thread_injector = ThreadLeakInjector(
        m=first[2] if first[2] is not None else 1,
        t=first[3] if first[3] is not None else 60,
        seed=seed + 1,
        enabled=first[2] is not None,
    )
    schedule: list[ScheduledAction] = []
    for start, n, m, t in phases[1:]:
        schedule.append(
            ScheduledAction(
                time_seconds=start,
                action=lambda sim, rate=n: memory_injector.set_rate(rate),
                label=f"memory N={n}",
            )
        )
        schedule.append(
            ScheduledAction(
                time_seconds=start,
                action=lambda sim, m_rate=m, t_rate=t: thread_injector.set_rate(m_rate, t_rate),
                label=f"threads M={m}, T={t}",
            )
        )
    simulation = TestbedSimulation(
        config=config,
        workload_ebs=workload_ebs,
        injectors=[memory_injector, thread_injector],
        schedule=schedule,
        seed=seed,
    )
    return simulation.run(max_seconds=max_seconds, engine=engine)
