"""Ablations on the design choices the paper discusses but does not quantify.

The paper motivates three design decisions qualitatively:

* the **sliding-window length** is "a certain trade-off: a long window is
  more noise tolerant, but also makes the method slower to reflect changes"
  (Section 2.2);
* the **derived consumption-speed variables** are "the most important
  variable we add";
* M5P's **smoothing** and the 10 % **security margin** of S-MAE are taken as
  given.

Each ablation here quantifies one of those choices on the Experiment 4.2
scenario (dynamic aging), which is the setting where reaction speed and noise
tolerance pull in opposite directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.dataset import build_dataset
from repro.core.evaluation import evaluate_predictions
from repro.core.features import FeatureCatalog
from repro.core.predictor import AgingPredictor
from repro.experiments.runner import (
    run_dynamic_memory_trace,
    run_memory_leak_trace,
    run_no_injection_trace,
)
from repro.experiments.scenarios import ExperimentScenarios
from repro.testbed.monitoring.collector import Trace

__all__ = [
    "AblationPoint",
    "run_window_sweep",
    "run_derived_variable_ablation",
    "run_smoothing_ablation",
    "run_security_margin_sweep",
]


@dataclass(frozen=True)
class AblationPoint:
    """One configuration of an ablation and its resulting accuracy."""

    label: str
    mae_seconds: float
    s_mae_seconds: float
    post_mae_seconds: float


def _dynamic_scenario_traces(
    scenarios: ExperimentScenarios, engine: str = "event"
) -> tuple[list[Trace], Trace]:
    """Training and test traces of the Experiment 4.2 scenario."""
    workload = scenarios.workload_42
    training: list[Trace] = [
        run_no_injection_trace(
            scenarios.config,
            workload,
            duration_seconds=scenarios.healthy_run_seconds,
            seed=scenarios.seed_for(600),
            engine=engine,
        )
    ]
    for index, rate in enumerate(rate for rate in scenarios.training_rates_42 if rate is not None):
        training.append(
            run_memory_leak_trace(
                scenarios.config, workload, n=rate, seed=scenarios.seed_for(601 + index), engine=engine
            )
        )
    phases = [
        (index * scenarios.phase_seconds_42, rate) for index, rate in enumerate(scenarios.test_rates_42)
    ]
    test_trace = run_dynamic_memory_trace(
        scenarios.config, workload, phases=phases, seed=scenarios.seed_for(650), engine=engine
    )
    if not test_trace.crashed:
        raise RuntimeError("the dynamic ablation scenario did not crash")
    return training, test_trace


def _evaluate(predictor: AgingPredictor, test_trace: Trace, label: str) -> AblationPoint:
    evaluation = predictor.evaluate_trace(test_trace)
    return AblationPoint(
        label=label,
        mae_seconds=evaluation.mae_seconds,
        s_mae_seconds=evaluation.s_mae_seconds,
        post_mae_seconds=evaluation.post_mae_seconds,
    )


def run_window_sweep(
    scenarios: ExperimentScenarios | None = None,
    windows: Sequence[int] = (2, 6, 12, 24, 48),
    traces: tuple[list[Trace], Trace] | None = None,
    engine: str = "event",
) -> list[AblationPoint]:
    """Accuracy of M5P as a function of the sliding-window length."""
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    training, test_trace = traces if traces is not None else _dynamic_scenario_traces(active, engine)
    points = []
    for window in windows:
        predictor = AgingPredictor(model="m5p", window=window).fit(training)
        points.append(_evaluate(predictor, test_trace, label=f"window={window}"))
    return points


def run_derived_variable_ablation(
    scenarios: ExperimentScenarios | None = None,
    traces: tuple[list[Trace], Trace] | None = None,
    engine: str = "event",
) -> list[AblationPoint]:
    """M5P with the full Table 2 set versus raw metrics only."""
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    training, test_trace = traces if traces is not None else _dynamic_scenario_traces(active, engine)
    points = []
    for label, include_derived in (("raw+derived", True), ("raw only", False)):
        catalog = FeatureCatalog(include_derived=include_derived)
        dataset = build_dataset(training, catalog=catalog)
        predictor = AgingPredictor(model="m5p").fit_dataset(dataset)
        test_dataset = build_dataset([test_trace], catalog=catalog)
        predictions = predictor.predict_dataset(test_dataset)
        evaluation = evaluate_predictions(
            times=test_trace.times(),
            true_ttf=test_trace.time_to_failure(),
            predicted_ttf=predictions,
            crash_time=test_trace.crash_time_seconds,
        )
        points.append(
            AblationPoint(
                label=label,
                mae_seconds=evaluation.mae_seconds,
                s_mae_seconds=evaluation.s_mae_seconds,
                post_mae_seconds=evaluation.post_mae_seconds,
            )
        )
    return points


def run_smoothing_ablation(
    scenarios: ExperimentScenarios | None = None,
    traces: tuple[list[Trace], Trace] | None = None,
    engine: str = "event",
) -> list[AblationPoint]:
    """M5P with and without Quinlan's prediction smoothing."""
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    training, test_trace = traces if traces is not None else _dynamic_scenario_traces(active, engine)
    dataset = build_dataset(training)
    test_dataset = build_dataset([test_trace])
    points = []
    for label, smoothing in (("smoothing on", True), ("smoothing off", False)):
        predictor = AgingPredictor(model="m5p")
        predictor._catalog = FeatureCatalog()  # identical columns for both variants
        predictor.fit_dataset(dataset)
        predictor.model.smoothing = smoothing
        predictions = predictor.predict_dataset(test_dataset)
        evaluation = evaluate_predictions(
            times=test_trace.times(),
            true_ttf=test_trace.time_to_failure(),
            predicted_ttf=predictions,
            crash_time=test_trace.crash_time_seconds,
        )
        points.append(
            AblationPoint(
                label=label,
                mae_seconds=evaluation.mae_seconds,
                s_mae_seconds=evaluation.s_mae_seconds,
                post_mae_seconds=evaluation.post_mae_seconds,
            )
        )
    return points


def run_security_margin_sweep(
    scenarios: ExperimentScenarios | None = None,
    margins: Sequence[float] = (0.0, 0.05, 0.10, 0.20, 0.30),
    traces: tuple[list[Trace], Trace] | None = None,
    engine: str = "event",
) -> list[AblationPoint]:
    """S-MAE of M5P as a function of the security margin (10 % in the paper)."""
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    training, test_trace = traces if traces is not None else _dynamic_scenario_traces(active, engine)
    predictor = AgingPredictor(model="m5p").fit(training)
    predictions = predictor.predict_trace(test_trace)
    points = []
    for margin in margins:
        evaluation = evaluate_predictions(
            times=test_trace.times(),
            true_ttf=test_trace.time_to_failure(),
            predicted_ttf=predictions,
            crash_time=test_trace.crash_time_seconds,
            security_margin=margin,
        )
        points.append(
            AblationPoint(
                label=f"margin={margin:.0%}",
                mae_seconds=evaluation.mae_seconds,
                s_mae_seconds=evaluation.s_mae_seconds,
                post_mae_seconds=evaluation.post_mae_seconds,
            )
        )
    return points
