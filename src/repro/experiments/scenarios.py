"""Scenario parameters of the paper's four experiments (and the cluster one).

``ExperimentScenarios`` centralises every number Section 4 states: training
workloads, injection rates, phase lengths and test workloads.  A single
``scale`` knob lets callers shrink the testbed (heap, thread limit) for quick
runs -- tests and examples use a scaled testbed, the benchmarks run the
paper-scale configuration.

``ClusterScenario`` plays the same role for the clustered deployment of
:mod:`repro.cluster`: fleet size, fleet-level workload, injection rate,
per-node alarm configuration and the restart cost model shared by all
compared policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.testbed.config import TestbedConfig
from repro.testbed.faults.injector import FaultInjector
from repro.testbed.faults.memory_leak import MemoryLeakInjector
from repro.testbed.faults.thread_leak import ThreadLeakInjector

__all__ = ["ExperimentScenarios", "ClusterScenario", "CLUSTER_SCENARIO_KINDS"]

#: The fleet aging scenarios the cluster experiment can drive: the paper's
#: workload-coupled memory leak, the workload-independent thread leak of
#: Experiment 4.4, and both at once (the two-resource scenario, where the
#: forecast must pick whichever resource exhausts first).
CLUSTER_SCENARIO_KINDS = ("memory", "threads", "two_resource")


@dataclass
class ExperimentScenarios:
    """Shared configuration of the Section 4 experiments.

    Attributes
    ----------
    config:
        Testbed configuration used for every run.
    base_seed:
        Seed from which each run's seed is derived (run index offsets keep
        runs independent but reproducible).
    phase_seconds_42 / phase_seconds_43 / phase_seconds_44:
        Phase lengths of the dynamic (20 min), periodic (20 min) and
        two-resource (30 min) experiments.
    """

    config: TestbedConfig = field(default_factory=TestbedConfig)
    base_seed: int = 2010
    #: Training workloads of Experiment 4.1 (emulated browsers).
    training_workloads_41: tuple[int, ...] = (25, 50, 100, 200)
    #: Test workloads of Experiment 4.1.
    test_workloads_41: tuple[int, ...] = (75, 150)
    #: Memory-leak parameter of Experiment 4.1.
    memory_n_41: int = 30
    #: Constant workload of Experiments 4.2 and 4.3.
    workload_42: int = 100
    #: Injection rates of the Experiment 4.2 training runs (None = healthy).
    training_rates_42: tuple[int | None, ...] = (None, 15, 30, 75)
    #: Phase schedule of the Experiment 4.2 test run: rate per 20-minute phase.
    test_rates_42: tuple[int | None, ...] = (None, 30, 15, 75)
    phase_seconds_42: float = 1200.0
    #: Experiment 4.3 acquire/release rates and phase length.
    acquire_n_43: int = 30
    release_n_43: int = 75
    phase_seconds_43: float = 1200.0
    #: Experiment 4.4 training rates: memory-only and thread-only runs.
    memory_rates_44: tuple[int, ...] = (15, 30, 75)
    thread_rates_44: tuple[tuple[int, int], ...] = ((15, 120), (30, 90), (45, 60))
    #: Experiment 4.4 test phases: (n, m, t) per 30-minute phase.
    test_phases_44: tuple[tuple[int | None, int | None, int | None], ...] = (
        (None, None, None),
        (30, 30, 90),
        (15, 15, 120),
        (75, 45, 60),
    )
    phase_seconds_44: float = 1800.0
    #: Duration of the healthy training run (1 hour in the paper).
    healthy_run_seconds: float = 3600.0
    #: Morphing (lifecycle) scenario: the run opens as a *mild* memory leak
    #: (one leak event per N requests -- large N = slow aging, so the heap
    #: is far from exhausted when the regime changes)...
    morph_memory_n: int = 30
    #: ...and morphs into a pure thread leak (M threads every T seconds)
    #: the champion's memory-only training never showed it.
    morph_thread_m: int = 45
    morph_thread_t: int = 30
    #: When the regime morphs, and the run's safety cap.
    morph_time_seconds: float = 2400.0
    morph_max_seconds: float = 6 * 3600.0

    @classmethod
    def paper_scale(cls, seed: int = 2010) -> "ExperimentScenarios":
        """The configuration closest to the paper: 1 GB heap, 2048 threads."""
        return cls(config=TestbedConfig(), base_seed=seed)

    @classmethod
    def fast(cls, seed: int = 2010) -> "ExperimentScenarios":
        """A scaled-down variant for tests and quick examples.

        The heap and thread limits shrink by 4x and the phase lengths by 4x,
        so every scenario crashes within a few simulated minutes-to-hours
        while exercising identical code paths.
        """
        config = TestbedConfig().scaled_for_fast_runs(4.0)
        return cls(
            config=config,
            base_seed=seed,
            phase_seconds_42=300.0,
            phase_seconds_43=300.0,
            phase_seconds_44=450.0,
            healthy_run_seconds=900.0,
            morph_memory_n=75,
            morph_thread_m=16,
            morph_thread_t=24,
            morph_time_seconds=600.0,
            morph_max_seconds=5400.0,
        )

    def seed_for(self, run_index: int) -> int:
        """Deterministic per-run seed."""
        return self.base_seed + 97 * run_index


@dataclass
class ClusterScenario:
    """Configuration of the clustered-deployment experiment.

    The scenario describes one fleet (size, total workload, injection rate),
    the historical failure runs the predictor trains on, and the restart cost
    model every compared rejuvenation strategy shares.  Defaults are the
    paper-scale configuration (1 GB heap, 100 emulated browsers per node at
    nominal capacity, the paper's ``N = 30`` leak); :meth:`fast` shrinks the
    testbed so the whole three-policy comparison runs in seconds.

    Attributes
    ----------
    config:
        Testbed configuration shared by every node and every training run.
    num_nodes / total_ebs:
        Fleet size and the fleet-level emulated-browser population the load
        balancer spreads across the accepting nodes.
    kind:
        Fleet aging scenario: ``"memory"`` (the paper's workload-coupled
        leak), ``"threads"`` (the Experiment 4.4 thread leak) or
        ``"two_resource"`` (both injectors at once).
    memory_n:
        Memory-leak injection parameter ``N`` of every node (and of the
        training runs); used by the ``memory`` and ``two_resource`` kinds.
    thread_m / thread_t:
        Thread-leak parameters ``M`` and ``T`` (threads per event, seconds
        between events); used by the ``threads`` and ``two_resource`` kinds.
    node_configs:
        Optional per-node testbed configurations for heterogeneous fleets
        (mixed heap sizes, thread limits); one entry per node.  ``None``
        runs every node on the shared ``config``.  The predictor trains on
        every distinct configuration in the fleet.
    horizon_seconds:
        Operation time of one cluster run.
    training_workloads / training_seeds / training_max_seconds:
        Per-node workloads and seeds of the single-server failure runs used
        to fit the predictor.  The workloads should bracket what a node can
        see in the fleet: its nominal share and the inflated share it
        carries while a peer is restarting.
    cluster_seed:
        Master seed of the cluster runs (workload stream and node seeds).
    alarm_threshold_seconds / alarm_consecutive:
        Per-node on-line alarm: predicted time to failure at or below the
        threshold for this many consecutive marks.
    ttf_comfort_seconds:
        Aging-aware routing parameter: forecast at or above this is healthy.
    drain_seconds / rejuvenation_downtime_seconds / crash_downtime_seconds:
        Restart cost model (identical for every policy).
    max_concurrent_restarts / min_active_fraction:
        Rolling-coordination bounds: concurrent restart budget and the
        fraction of the fleet that must stay in service.
    time_based_interval_seconds:
        Restart interval of the uncoordinated time-based baseline; ``None``
        derives it from the training runs as half the smallest observed time
        to crash (the classic two-fold safety factor an operator without a
        predictor would apply).
    """

    config: TestbedConfig = field(default_factory=TestbedConfig)
    num_nodes: int = 3
    total_ebs: int = 300
    kind: str = "memory"
    memory_n: int = 30
    thread_m: int = 30
    thread_t: int = 90
    node_configs: tuple[TestbedConfig, ...] | None = None
    horizon_seconds: float = 12 * 3600.0
    training_workloads: tuple[int, ...] = (100, 150)
    training_seeds: tuple[int, ...] = (1, 2)
    training_max_seconds: float = 24 * 3600.0
    cluster_seed: int = 7
    alarm_threshold_seconds: float = 600.0
    alarm_consecutive: int = 2
    ttf_comfort_seconds: float = 1200.0
    drain_seconds: float = 30.0
    rejuvenation_downtime_seconds: float = 120.0
    crash_downtime_seconds: float = 900.0
    max_concurrent_restarts: int = 1
    min_active_fraction: float = 0.5
    time_based_interval_seconds: float | None = None
    #: Run the predictive policy's monitors under the adaptive lifecycle
    #: manager (:mod:`repro.lifecycle`): drift detection plus
    #: champion/challenger retraining per node.  On the stationary scenarios
    #: above no drift fires, so this must not change any outcome -- the
    #: no-regression property the cluster lifecycle tests pin down.
    lifecycle: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if self.total_ebs < self.num_nodes:
            raise ValueError("total_ebs must provide at least one browser per node")
        if self.kind not in CLUSTER_SCENARIO_KINDS:
            raise ValueError(f"kind must be one of {CLUSTER_SCENARIO_KINDS}, not {self.kind!r}")
        if self.node_configs is not None and len(self.node_configs) != self.num_nodes:
            raise ValueError("node_configs must provide one configuration per node")
        if self.horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        if not self.training_workloads or not self.training_seeds:
            raise ValueError("the predictor needs at least one training workload and seed")

    @classmethod
    def fast(cls, kind: str = "memory") -> "ClusterScenario":
        """A scaled-down fleet for tests and quick examples.

        Three nodes with 160 MB heaps and 40 emulated browsers each under an
        aggressive ``N = 20`` leak (and, for the thread scenarios, an
        ``M = 8 / T = 180`` thread leak against a 96-thread limit): nodes
        crash after roughly half an hour of simulated time, so a two-hour
        fleet comparison runs in a few wall-clock seconds while exercising
        every cluster code path.
        """
        config = TestbedConfig(
            heap_max_mb=160.0,
            young_capacity_mb=16.0,
            old_initial_mb=48.0,
            old_resize_step_mb=32.0,
            perm_mb=16.0,
            max_threads=96,
            base_worker_threads=16,
        )
        return cls(
            config=config,
            num_nodes=3,
            total_ebs=120,
            kind=kind,
            memory_n=20,
            thread_m=8,
            thread_t=180,
            horizon_seconds=7200.0,
            training_workloads=(40, 60),
            training_seeds=(1, 2),
            training_max_seconds=14_400.0,
            alarm_threshold_seconds=550.0,
            alarm_consecutive=2,
            ttf_comfort_seconds=900.0,
            drain_seconds=15.0,
        )

    @classmethod
    def fast_heterogeneous(cls, kind: str = "memory") -> "ClusterScenario":
        """The fast fleet with mixed heap sizes per node.

        Node 0 runs on a heap 30% smaller than the shared baseline and node
        2 on one 40% larger, all under the same leak parameters -- the
        configuration the heterogeneous-fleet tests drive: the small-heap
        node exhausts its Old generation first, so it crashes earlier and,
        under aging-aware routing, is shed first.
        """
        scenario = cls.fast(kind=kind)
        base = scenario.config
        small = replace(base, heap_max_mb=112.0)
        large = replace(base, heap_max_mb=224.0)
        scenario.node_configs = (small, base, large)
        return scenario

    @classmethod
    def paper_scale(cls, kind: str = "memory") -> "ClusterScenario":
        """The fleet closest to the paper's testbed: 1 GB heap, ``N = 30``."""
        return cls(kind=kind)

    @property
    def nominal_node_ebs(self) -> int:
        """Per-node workload share when the whole fleet is serving."""
        return self.total_ebs // self.num_nodes

    def training_configs(self) -> tuple[TestbedConfig, ...]:
        """Distinct testbed configurations the predictor must learn.

        Homogeneous fleets train on the shared configuration; heterogeneous
        fleets train on every distinct per-node configuration so the M5P
        model sees each heap/thread geometry's path to exhaustion.
        """
        if self.node_configs is None:
            return (self.config,)
        unique: list[TestbedConfig] = []
        for node_config in self.node_configs:
            if node_config not in unique:
                unique.append(node_config)
        return tuple(unique)

    def injector_factory(self, seed: int) -> list[FaultInjector]:
        """Fresh fault injectors for one node incarnation (kind-dependent)."""
        injectors: list[FaultInjector] = []
        if self.kind != "threads":
            injectors.append(MemoryLeakInjector(n=self.memory_n, seed=seed))
        if self.kind != "memory":
            injectors.append(ThreadLeakInjector(m=self.thread_m, t=self.thread_t, seed=seed + 1))
        return injectors
