"""Scenario parameters of the paper's four experiments (and the cluster one).

``ExperimentScenarios`` centralises every number Section 4 states: training
workloads, injection rates, phase lengths and test workloads.  A single
``scale`` knob lets callers shrink the testbed (heap, thread limit) for quick
runs -- tests and examples use a scaled testbed, the benchmarks run the
paper-scale configuration.

``ClusterScenario`` plays the same role for the clustered deployment of
:mod:`repro.cluster`: fleet size, fleet-level workload, injection rate,
per-node alarm configuration and the restart cost model shared by all
compared policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.testbed.config import TestbedConfig
from repro.testbed.faults.injector import FaultInjector
from repro.testbed.faults.memory_leak import MemoryLeakInjector

__all__ = ["ExperimentScenarios", "ClusterScenario"]


@dataclass
class ExperimentScenarios:
    """Shared configuration of the Section 4 experiments.

    Attributes
    ----------
    config:
        Testbed configuration used for every run.
    base_seed:
        Seed from which each run's seed is derived (run index offsets keep
        runs independent but reproducible).
    phase_seconds_42 / phase_seconds_43 / phase_seconds_44:
        Phase lengths of the dynamic (20 min), periodic (20 min) and
        two-resource (30 min) experiments.
    """

    config: TestbedConfig = field(default_factory=TestbedConfig)
    base_seed: int = 2010
    #: Training workloads of Experiment 4.1 (emulated browsers).
    training_workloads_41: tuple[int, ...] = (25, 50, 100, 200)
    #: Test workloads of Experiment 4.1.
    test_workloads_41: tuple[int, ...] = (75, 150)
    #: Memory-leak parameter of Experiment 4.1.
    memory_n_41: int = 30
    #: Constant workload of Experiments 4.2 and 4.3.
    workload_42: int = 100
    #: Injection rates of the Experiment 4.2 training runs (None = healthy).
    training_rates_42: tuple[int | None, ...] = (None, 15, 30, 75)
    #: Phase schedule of the Experiment 4.2 test run: rate per 20-minute phase.
    test_rates_42: tuple[int | None, ...] = (None, 30, 15, 75)
    phase_seconds_42: float = 1200.0
    #: Experiment 4.3 acquire/release rates and phase length.
    acquire_n_43: int = 30
    release_n_43: int = 75
    phase_seconds_43: float = 1200.0
    #: Experiment 4.4 training rates: memory-only and thread-only runs.
    memory_rates_44: tuple[int, ...] = (15, 30, 75)
    thread_rates_44: tuple[tuple[int, int], ...] = ((15, 120), (30, 90), (45, 60))
    #: Experiment 4.4 test phases: (n, m, t) per 30-minute phase.
    test_phases_44: tuple[tuple[int | None, int | None, int | None], ...] = (
        (None, None, None),
        (30, 30, 90),
        (15, 15, 120),
        (75, 45, 60),
    )
    phase_seconds_44: float = 1800.0
    #: Duration of the healthy training run (1 hour in the paper).
    healthy_run_seconds: float = 3600.0

    @classmethod
    def paper_scale(cls, seed: int = 2010) -> "ExperimentScenarios":
        """The configuration closest to the paper: 1 GB heap, 2048 threads."""
        return cls(config=TestbedConfig(), base_seed=seed)

    @classmethod
    def fast(cls, seed: int = 2010) -> "ExperimentScenarios":
        """A scaled-down variant for tests and quick examples.

        The heap and thread limits shrink by 4x and the phase lengths by 4x,
        so every scenario crashes within a few simulated minutes-to-hours
        while exercising identical code paths.
        """
        config = TestbedConfig().scaled_for_fast_runs(4.0)
        return cls(
            config=config,
            base_seed=seed,
            phase_seconds_42=300.0,
            phase_seconds_43=300.0,
            phase_seconds_44=450.0,
            healthy_run_seconds=900.0,
        )

    def seed_for(self, run_index: int) -> int:
        """Deterministic per-run seed."""
        return self.base_seed + 97 * run_index


@dataclass
class ClusterScenario:
    """Configuration of the clustered-deployment experiment.

    The scenario describes one fleet (size, total workload, injection rate),
    the historical failure runs the predictor trains on, and the restart cost
    model every compared rejuvenation strategy shares.  Defaults are the
    paper-scale configuration (1 GB heap, 100 emulated browsers per node at
    nominal capacity, the paper's ``N = 30`` leak); :meth:`fast` shrinks the
    testbed so the whole three-policy comparison runs in seconds.

    Attributes
    ----------
    config:
        Testbed configuration shared by every node and every training run.
    num_nodes / total_ebs:
        Fleet size and the fleet-level emulated-browser population the load
        balancer spreads across the accepting nodes.
    memory_n:
        Memory-leak injection parameter ``N`` of every node (and of the
        training runs).
    horizon_seconds:
        Operation time of one cluster run.
    training_workloads / training_seeds / training_max_seconds:
        Per-node workloads and seeds of the single-server failure runs used
        to fit the predictor.  The workloads should bracket what a node can
        see in the fleet: its nominal share and the inflated share it
        carries while a peer is restarting.
    cluster_seed:
        Master seed of the cluster runs (workload stream and node seeds).
    alarm_threshold_seconds / alarm_consecutive:
        Per-node on-line alarm: predicted time to failure at or below the
        threshold for this many consecutive marks.
    ttf_comfort_seconds:
        Aging-aware routing parameter: forecast at or above this is healthy.
    drain_seconds / rejuvenation_downtime_seconds / crash_downtime_seconds:
        Restart cost model (identical for every policy).
    max_concurrent_restarts / min_active_fraction:
        Rolling-coordination bounds: concurrent restart budget and the
        fraction of the fleet that must stay in service.
    time_based_interval_seconds:
        Restart interval of the uncoordinated time-based baseline; ``None``
        derives it from the training runs as half the smallest observed time
        to crash (the classic two-fold safety factor an operator without a
        predictor would apply).
    """

    config: TestbedConfig = field(default_factory=TestbedConfig)
    num_nodes: int = 3
    total_ebs: int = 300
    memory_n: int = 30
    horizon_seconds: float = 12 * 3600.0
    training_workloads: tuple[int, ...] = (100, 150)
    training_seeds: tuple[int, ...] = (1, 2)
    training_max_seconds: float = 24 * 3600.0
    cluster_seed: int = 7
    alarm_threshold_seconds: float = 600.0
    alarm_consecutive: int = 2
    ttf_comfort_seconds: float = 1200.0
    drain_seconds: float = 30.0
    rejuvenation_downtime_seconds: float = 120.0
    crash_downtime_seconds: float = 900.0
    max_concurrent_restarts: int = 1
    min_active_fraction: float = 0.5
    time_based_interval_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if self.total_ebs < self.num_nodes:
            raise ValueError("total_ebs must provide at least one browser per node")
        if self.horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        if not self.training_workloads or not self.training_seeds:
            raise ValueError("the predictor needs at least one training workload and seed")

    @classmethod
    def fast(cls) -> "ClusterScenario":
        """A scaled-down fleet for tests and quick examples.

        Three nodes with 160 MB heaps and 40 emulated browsers each under an
        aggressive ``N = 20`` leak: nodes crash after roughly 25 simulated
        minutes, so a two-hour fleet comparison runs in a few wall-clock
        seconds while exercising every cluster code path.
        """
        config = TestbedConfig(
            heap_max_mb=160.0,
            young_capacity_mb=16.0,
            old_initial_mb=48.0,
            old_resize_step_mb=32.0,
            perm_mb=16.0,
            max_threads=96,
            base_worker_threads=16,
        )
        return cls(
            config=config,
            num_nodes=3,
            total_ebs=120,
            memory_n=20,
            horizon_seconds=7200.0,
            training_workloads=(40, 60),
            training_seeds=(1, 2),
            training_max_seconds=14_400.0,
            alarm_threshold_seconds=550.0,
            alarm_consecutive=2,
            ttf_comfort_seconds=900.0,
            drain_seconds=15.0,
        )

    @classmethod
    def paper_scale(cls) -> "ClusterScenario":
        """The fleet closest to the paper's testbed: 1 GB heap, ``N = 30``."""
        return cls()

    @property
    def nominal_node_ebs(self) -> int:
        """Per-node workload share when the whole fleet is serving."""
        return self.total_ebs // self.num_nodes

    def injector_factory(self, seed: int) -> list[FaultInjector]:
        """Fresh memory-leak injectors for one node incarnation."""
        return [MemoryLeakInjector(n=self.memory_n, seed=seed)]
