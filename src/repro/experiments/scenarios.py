"""Scenario parameters of the paper's four experiments.

``ExperimentScenarios`` centralises every number Section 4 states: training
workloads, injection rates, phase lengths and test workloads.  A single
``scale`` knob lets callers shrink the testbed (heap, thread limit) for quick
runs -- tests and examples use a scaled testbed, the benchmarks run the
paper-scale configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.testbed.config import TestbedConfig

__all__ = ["ExperimentScenarios"]


@dataclass
class ExperimentScenarios:
    """Shared configuration of the Section 4 experiments.

    Attributes
    ----------
    config:
        Testbed configuration used for every run.
    base_seed:
        Seed from which each run's seed is derived (run index offsets keep
        runs independent but reproducible).
    phase_seconds_42 / phase_seconds_43 / phase_seconds_44:
        Phase lengths of the dynamic (20 min), periodic (20 min) and
        two-resource (30 min) experiments.
    """

    config: TestbedConfig = field(default_factory=TestbedConfig)
    base_seed: int = 2010
    #: Training workloads of Experiment 4.1 (emulated browsers).
    training_workloads_41: tuple[int, ...] = (25, 50, 100, 200)
    #: Test workloads of Experiment 4.1.
    test_workloads_41: tuple[int, ...] = (75, 150)
    #: Memory-leak parameter of Experiment 4.1.
    memory_n_41: int = 30
    #: Constant workload of Experiments 4.2 and 4.3.
    workload_42: int = 100
    #: Injection rates of the Experiment 4.2 training runs (None = healthy).
    training_rates_42: tuple[int | None, ...] = (None, 15, 30, 75)
    #: Phase schedule of the Experiment 4.2 test run: rate per 20-minute phase.
    test_rates_42: tuple[int | None, ...] = (None, 30, 15, 75)
    phase_seconds_42: float = 1200.0
    #: Experiment 4.3 acquire/release rates and phase length.
    acquire_n_43: int = 30
    release_n_43: int = 75
    phase_seconds_43: float = 1200.0
    #: Experiment 4.4 training rates: memory-only and thread-only runs.
    memory_rates_44: tuple[int, ...] = (15, 30, 75)
    thread_rates_44: tuple[tuple[int, int], ...] = ((15, 120), (30, 90), (45, 60))
    #: Experiment 4.4 test phases: (n, m, t) per 30-minute phase.
    test_phases_44: tuple[tuple[int | None, int | None, int | None], ...] = (
        (None, None, None),
        (30, 30, 90),
        (15, 15, 120),
        (75, 45, 60),
    )
    phase_seconds_44: float = 1800.0
    #: Duration of the healthy training run (1 hour in the paper).
    healthy_run_seconds: float = 3600.0

    @classmethod
    def paper_scale(cls, seed: int = 2010) -> "ExperimentScenarios":
        """The configuration closest to the paper: 1 GB heap, 2048 threads."""
        return cls(config=TestbedConfig(), base_seed=seed)

    @classmethod
    def fast(cls, seed: int = 2010) -> "ExperimentScenarios":
        """A scaled-down variant for tests and quick examples.

        The heap and thread limits shrink by 4x and the phase lengths by 4x,
        so every scenario crashes within a few simulated minutes-to-hours
        while exercising identical code paths.
        """
        config = TestbedConfig().scaled_for_fast_runs(4.0)
        return cls(
            config=config,
            base_seed=seed,
            phase_seconds_42=300.0,
            phase_seconds_43=300.0,
            phase_seconds_44=450.0,
            healthy_run_seconds=900.0,
        )

    def seed_for(self, run_index: int) -> int:
        """Deterministic per-run seed."""
        return self.base_seed + 97 * run_index
