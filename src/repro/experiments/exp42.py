"""Experiment 4.2 -- dynamic and variable software aging (the paper's Figure 3).

Setup (Section 4.2): the model is trained on four constant-behaviour runs at
100 emulated browsers -- one hour with no injection (labelled with the
"infinite" 3-hour horizon) and three runs with constant leak rates
``N = 15, 30, 75`` executed until the crash.  The test run changes its rate
every 20 minutes (no injection, then ``N = 30``, then ``N = 15``, then
``N = 75`` until the crash), and the question is whether the model adapts:
the predicted time to failure must drop when injection starts, track the
rate changes, and stay accurate near the crash.

The paper reports MAE 16:26, S-MAE 13:03, PRE-MAE 17:15 and POST-MAE 8:14,
plus Figure 3 showing the predicted time against the Tomcat memory
evolution.  One reproduction note: the paper scores each prediction against
a counterfactual crash time obtained by freezing the current injection rate;
here predictions are scored against the *actual* crash time of the dynamic
run, which is the stricter, simpler ground truth (the substitution is
documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import PredictionEvaluation
from repro.core.predictor import AgingPredictor
from repro.experiments.runner import (
    run_dynamic_memory_trace,
    run_memory_leak_trace,
    run_no_injection_trace,
)
from repro.experiments.scenarios import ExperimentScenarios
from repro.testbed.monitoring.collector import Trace

__all__ = ["Experiment42Result", "run_experiment_42"]


@dataclass
class Experiment42Result:
    """Accuracy figures and the Figure 3 data series of Experiment 4.2."""

    m5p_evaluation: PredictionEvaluation
    linear_evaluation: PredictionEvaluation
    times: np.ndarray
    predicted_ttf: np.ndarray
    true_ttf: np.ndarray
    tomcat_memory_mb: np.ndarray
    phase_starts: tuple[float, ...]
    training_instances: int = 0
    m5p_leaves: int = 0
    m5p_inner_nodes: int = 0
    test_duration_seconds: float = 0.0

    def figure3_series(self) -> dict[str, np.ndarray]:
        """The two curves of Figure 3: predicted time and memory evolution."""
        return {
            "time_seconds": self.times,
            "predicted_ttf_seconds": self.predicted_ttf,
            "tomcat_memory_mb": self.tomcat_memory_mb,
        }

    def adapts_to_injection_start(self) -> bool:
        """Whether the prediction drops sharply once injection begins.

        The paper highlights that during the first (healthy) phase the model
        predicts the "infinite" horizon and that the prediction falls
        drastically when the first injection phase starts.
        """
        if len(self.phase_starts) < 2:
            return False
        first_injection = self.phase_starts[1]
        before = self.predicted_ttf[self.times <= first_injection]
        settle_mask = (self.times > first_injection + 300.0) & (self.times <= first_injection + 900.0)
        after = self.predicted_ttf[settle_mask]
        if before.size == 0 or after.size == 0:
            return False
        return float(np.median(after)) < 0.7 * float(np.median(before))


def run_experiment_42(
    scenarios: ExperimentScenarios | None = None,
    engine: str = "event",
) -> Experiment42Result:
    """Regenerate Experiment 4.2 / Figure 3.

    Prefer the unified entry point ``repro.api.run("exp42", ...)``; this
    function remains as the underlying driver.  ``engine`` selects the
    simulation engine of every generated trace.
    """
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    workload = active.workload_42

    training: list[Trace] = [
        run_no_injection_trace(
            active.config,
            workload,
            duration_seconds=active.healthy_run_seconds,
            seed=active.seed_for(200),
            engine=engine,
        )
    ]
    for index, rate in enumerate(rate for rate in active.training_rates_42 if rate is not None):
        training.append(
            run_memory_leak_trace(
                active.config, workload, n=rate, seed=active.seed_for(201 + index), engine=engine
            )
        )

    phases = [
        (index * active.phase_seconds_42, rate) for index, rate in enumerate(active.test_rates_42)
    ]
    test_trace = run_dynamic_memory_trace(
        active.config, workload, phases=phases, seed=active.seed_for(250), engine=engine
    )
    if not test_trace.crashed:
        raise RuntimeError(
            "the dynamic test run did not crash; increase the injection rates or the time limit"
        )

    m5p = AgingPredictor(model="m5p").fit(training)
    linear = AgingPredictor(model="linear").fit(training)

    predictions = m5p.predict_trace(test_trace)
    return Experiment42Result(
        m5p_evaluation=m5p.evaluate_trace(test_trace),
        linear_evaluation=linear.evaluate_trace(test_trace),
        times=test_trace.times(),
        predicted_ttf=predictions,
        true_ttf=test_trace.time_to_failure(),
        tomcat_memory_mb=test_trace.series("tomcat_memory_used_mb"),
        phase_starts=tuple(start for start, _rate in phases),
        training_instances=m5p.num_training_instances,
        m5p_leaves=m5p.num_leaves or 0,
        m5p_inner_nodes=m5p.num_inner_nodes or 0,
        test_duration_seconds=test_trace.crash_time_seconds or test_trace.duration_seconds,
    )
