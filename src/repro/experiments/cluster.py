"""The cluster experiment: coordinated rolling rejuvenation at fleet scale.

The paper's Section 6 ambition -- predict the crash, rejuvenate before it --
is evaluated here in the setting real deployments face: a load-balanced
fleet of aging servers whose restarts must be coordinated so the service
never loses all of its capacity.  The experiment operates the same seeded
fleet under three strategies:

1. **no rejuvenation** -- every node runs to its crash (the paper's
   baseline, now paying fleet-level capacity loss and full outages when
   crashes coincide);
2. **uncoordinated time-based restarts** -- each node independently applies
   the fixed-uptime rule with a two-fold safety factor; nothing staggers the
   nodes, so the implicitly synchronised fleet restarts together;
3. **coordinated rolling predictive rejuvenation** -- each node streams its
   marks through the fitted M5P predictor, the aging-aware balancer sheds
   traffic away from nodes forecast to crash, and the rolling coordinator
   drains and restarts alarmed nodes one at a time under a minimum-capacity
   floor.

The headline claim (asserted by the unit tests and printed by
``examples/cluster_rolling_rejuvenation.py``): the coordinated predictive
fleet achieves strictly higher capacity-weighted availability than both
baselines **and zero full-outage seconds**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.coordinator import (
    ClusterRejuvenationCoordinator,
    NoClusterRejuvenation,
    RollingPredictiveRejuvenation,
    UncoordinatedTimeBasedRejuvenation,
)
from repro.cluster.engine import ClusterEngine, PerSecondClusterEngine
from repro.cluster.fluid import FluidClusterEngine
from repro.cluster.routing import AgingAwareRouting, RoutingPolicy
from repro.cluster.status import ClusterOutcome
from repro.cluster.node import MonitorFactory
from repro.core.predictor import AgingPredictor
from repro.experiments.runner import run_memory_leak_trace, run_thread_leak_trace, run_two_resource_trace
from repro.experiments.scenarios import ClusterScenario
from repro.lifecycle import LifecycleConfig, ManagedOnlineMonitor
from repro.testbed.monitoring.collector import Trace

__all__ = [
    "ClusterExperimentResult",
    "generate_cluster_training_traces",
    "train_cluster_predictor",
    "derive_time_based_interval",
    "lifecycle_monitor_factory",
    "build_cluster_engine",
    "run_cluster_policy",
    "run_cluster_experiment",
]


@dataclass
class ClusterExperimentResult:
    """Outcomes of the three-strategy fleet comparison."""

    no_rejuvenation: ClusterOutcome
    time_based: ClusterOutcome
    rolling_predictive: ClusterOutcome
    time_based_interval_seconds: float
    training_crash_seconds: tuple[float, ...]
    training_instances: int

    def outcomes(self) -> dict[str, ClusterOutcome]:
        return {
            "no rejuvenation": self.no_rejuvenation,
            "uncoordinated time-based": self.time_based,
            "rolling predictive": self.rolling_predictive,
        }

    def rolling_wins(self) -> bool:
        """The acceptance claim: strictly best availability, zero outage."""
        rolling = self.rolling_predictive
        return (
            rolling.availability > self.no_rejuvenation.availability
            and rolling.availability > self.time_based.availability
            and rolling.full_outage_seconds == 0.0
        )

    def summary_lines(self) -> list[str]:
        return [outcome.summary() for outcome in self.outcomes().values()]


def generate_cluster_training_traces(
    scenario: ClusterScenario, engine: str = "event"
) -> list[Trace]:
    """Single-server failure runs bracketing the per-node fleet workloads.

    The training mix follows the scenario kind: memory fleets train on
    memory-leak crashes, thread fleets on thread-exhaustion crashes, and
    two-resource fleets on memory-only, thread-only *and* combined runs --
    mirroring Experiment 4.4, and necessary for the same reason: a model
    that has only ever seen one resource elevated at a time wildly
    underestimates the time to failure when both climb together, and an
    underestimating monitor rejuvenates the fleet into the ground.
    Heterogeneous fleets repeat the runs for every distinct node
    configuration.  ``engine`` selects the single-server simulation engine
    used for the training runs (``"event"`` or ``"per_second"``, bit-for-bit
    identical given the seeds).
    """
    traces: list[Trace] = []
    for config in scenario.training_configs():
        for workload in scenario.training_workloads:
            for seed in scenario.training_seeds:
                if scenario.kind != "threads":
                    traces.append(
                        run_memory_leak_trace(
                            config,
                            workload,
                            n=scenario.memory_n,
                            seed=seed,
                            max_seconds=scenario.training_max_seconds,
                            engine=engine,
                        )
                    )
                if scenario.kind != "memory":
                    traces.append(
                        run_thread_leak_trace(
                            config,
                            workload,
                            m=scenario.thread_m,
                            t=scenario.thread_t,
                            seed=seed,
                            max_seconds=scenario.training_max_seconds,
                            engine=engine,
                        )
                    )
                if scenario.kind == "two_resource":
                    traces.append(
                        run_two_resource_trace(
                            config,
                            workload,
                            phases=[(0.0, scenario.memory_n, scenario.thread_m, scenario.thread_t)],
                            seed=seed,
                            max_seconds=scenario.training_max_seconds,
                            engine=engine,
                        )
                    )
    crashless = [trace for trace in traces if not trace.crashed]
    if crashless:
        raise RuntimeError(
            f"{len(crashless)} training run(s) did not crash within "
            f"{scenario.training_max_seconds:.0f}s; increase the injection rates or the time limit"
        )
    return traces


def train_cluster_predictor(
    scenario: ClusterScenario, traces: list[Trace] | None = None
) -> AgingPredictor:
    """Fit the paper's M5P predictor on the scenario's training runs."""
    training = traces if traces is not None else generate_cluster_training_traces(scenario)
    return AgingPredictor(model="m5p").fit(training)


def derive_time_based_interval(scenario: ClusterScenario, traces: list[Trace]) -> float:
    """Restart interval of the time-based baseline.

    When the scenario does not pin one, apply the rule an operator without a
    predictor would: restart at half the smallest time to crash ever
    observed -- a two-fold safety factor against the variance of the aging
    process.
    """
    if scenario.time_based_interval_seconds is not None:
        return scenario.time_based_interval_seconds
    crash_times = [float(trace.crash_time_seconds) for trace in traces if trace.crash_time_seconds]
    if not crash_times:
        raise ValueError("cannot derive a restart interval without crashed training runs")
    return min(crash_times) / 2.0


def lifecycle_monitor_factory(
    scenario: ClusterScenario, predictor: AgingPredictor
) -> MonitorFactory:
    """Per-node builder of lifecycle-managed monitors for a fleet.

    Every node gets its *own* champion -- a fresh fit of the predictor's
    model on the predictor's training dataset (deterministic, so before any
    promotion the per-node champions predict bit-identically to the shared
    one) -- because promotions are node-local: one node's drift must not
    swap the model a healthy peer is relying on.  Heterogeneous fleets pick
    each node's resource capacities from its own testbed configuration.
    """
    training_dataset = predictor.training_dataset
    model = predictor.model_name

    def factory(node_id: int) -> ManagedOnlineMonitor:
        node_config = (
            scenario.node_configs[node_id] if scenario.node_configs is not None else scenario.config
        )
        return ManagedOnlineMonitor(
            champion=AgingPredictor(model=model).fit_dataset(training_dataset),
            config=LifecycleConfig().for_testbed(node_config),
            alarm_threshold_seconds=scenario.alarm_threshold_seconds,
            alarm_consecutive=scenario.alarm_consecutive,
            run=f"n{node_id}",
        )

    return factory


def build_cluster_engine(
    scenario: ClusterScenario,
    coordinator: ClusterRejuvenationCoordinator,
    routing_policy: RoutingPolicy | None = None,
    predictor: AgingPredictor | None = None,
    monitor_factory: MonitorFactory | None = None,
    fleet_engine: str = "event",
):
    """Construct (but do not run) the cluster engine of one fleet policy.

    ``fleet_engine`` selects the cluster engine tier: ``"event"`` (exact,
    default), ``"per_second"`` (exact tick-everything reference) or
    ``"fluid"`` (approximate numpy mean-field tier for wide fleets).  The
    fleet service drives the returned engine incrementally through
    ``step``/``finish``; :func:`run_cluster_policy` runs it to the scenario
    horizon in one batch.
    """
    if fleet_engine not in ("event", "per_second", "fluid"):
        raise ValueError(f"unknown fleet engine {fleet_engine!r}")
    engine_cls = {
        "event": ClusterEngine,
        "per_second": PerSecondClusterEngine,
        "fluid": FluidClusterEngine,
    }[fleet_engine]
    return engine_cls(
        num_nodes=scenario.num_nodes,
        config=scenario.config,
        node_configs=scenario.node_configs,
        total_ebs=scenario.total_ebs,
        injector_factory=scenario.injector_factory,
        routing_policy=routing_policy,
        coordinator=coordinator,
        predictor=predictor,
        monitor_factory=monitor_factory,
        alarm_threshold_seconds=scenario.alarm_threshold_seconds,
        alarm_consecutive=scenario.alarm_consecutive,
        drain_seconds=scenario.drain_seconds,
        rejuvenation_downtime_seconds=scenario.rejuvenation_downtime_seconds,
        crash_downtime_seconds=scenario.crash_downtime_seconds,
        seed=scenario.cluster_seed,
    )


def run_cluster_policy(
    scenario: ClusterScenario,
    coordinator: ClusterRejuvenationCoordinator,
    routing_policy: RoutingPolicy | None = None,
    predictor: AgingPredictor | None = None,
    monitor_factory: MonitorFactory | None = None,
    fleet_engine: str = "event",
) -> ClusterOutcome:
    """Operate one fleet configuration over the scenario horizon.

    See :func:`build_cluster_engine` for the ``fleet_engine`` tiers.
    """
    engine = build_cluster_engine(
        scenario,
        coordinator,
        routing_policy=routing_policy,
        predictor=predictor,
        monitor_factory=monitor_factory,
        fleet_engine=fleet_engine,
    )
    return engine.run(max_seconds=scenario.horizon_seconds)


def run_cluster_experiment(
    scenario: ClusterScenario | None = None,
    training: list[Trace] | None = None,
    predictor: AgingPredictor | None = None,
    engine: str = "event",
) -> ClusterExperimentResult:
    """Regenerate the three-strategy cluster comparison.

    Prefer the unified entry point ``repro.api.run("cluster", ...)``; this
    function remains as the underlying driver.  ``training`` and
    ``predictor`` may be supplied to reuse already computed runs (the tests
    share them across fixtures); both are regenerated from the scenario when
    omitted.

    ``engine`` selects the simulation tier.  ``"event"`` and
    ``"per_second"`` pick the single-server engine of the generated training
    runs while the fleet itself runs the exact event-driven
    ``ClusterEngine`` (their sim-channel telemetry digests agree --
    engine-invariant).  ``"fluid"`` runs the three fleets on the
    approximate numpy :class:`~repro.cluster.fluid.FluidClusterEngine`
    (training traces still come from the exact event engine); fluid
    outcomes match the exact aggregates within the validation bounds but
    are not bit-identical to them.
    """
    if engine not in ("event", "per_second", "fluid"):
        raise ValueError(f"unknown engine {engine!r}")
    active = scenario if scenario is not None else ClusterScenario.paper_scale()
    fleet_engine = "fluid" if engine == "fluid" else "event"
    training_engine = "event" if engine == "fluid" else engine
    if active.lifecycle and fleet_engine == "fluid":
        raise ValueError(
            "lifecycle-managed monitors are not supported by the fluid tier; "
            "use engine='event' or 'per_second' with lifecycle=true"
        )

    if training is None:
        training = generate_cluster_training_traces(active, engine=training_engine)
    if predictor is None:
        predictor = train_cluster_predictor(active, training)
    interval = derive_time_based_interval(active, training)

    no_rejuvenation = run_cluster_policy(active, NoClusterRejuvenation(), fleet_engine=fleet_engine)
    time_based = run_cluster_policy(
        active, UncoordinatedTimeBasedRejuvenation(interval), fleet_engine=fleet_engine
    )
    # scenario.lifecycle swaps the predictive policy's per-incarnation
    # monitors for node-local lifecycle managers; the stationary scenarios
    # never fire the drift test, so outcomes must not change (pinned by the
    # cluster lifecycle tests).
    rolling = run_cluster_policy(
        active,
        RollingPredictiveRejuvenation(
            max_concurrent_restarts=active.max_concurrent_restarts,
            min_active_fraction=active.min_active_fraction,
        ),
        routing_policy=AgingAwareRouting(ttf_comfort_seconds=active.ttf_comfort_seconds),
        predictor=None if active.lifecycle else predictor,
        monitor_factory=lifecycle_monitor_factory(active, predictor) if active.lifecycle else None,
        fleet_engine=fleet_engine,
    )
    return ClusterExperimentResult(
        no_rejuvenation=no_rejuvenation,
        time_based=time_based,
        rolling_predictive=rolling,
        time_based_interval_seconds=interval,
        training_crash_seconds=tuple(
            float(trace.crash_time_seconds) for trace in training if trace.crash_time_seconds
        ),
        training_instances=predictor.num_training_instances,
    )
