"""Drivers that regenerate every experiment of the paper's Section 4.

Each module reproduces one experiment end to end -- generate the training
runs on the simulated testbed, train M5P and the Linear Regression baseline,
run the test scenario and score it with the paper's accuracy measures:

* :mod:`repro.experiments.exp41` -- deterministic aging (Table 3),
* :mod:`repro.experiments.exp42` -- dynamic, rate-changing aging (Figure 3),
* :mod:`repro.experiments.exp43` -- aging hidden in a periodic pattern, with
  expert feature selection (Figure 4 and Table 4),
* :mod:`repro.experiments.exp44` -- two simultaneous aging resources
  (Figure 5) plus the root-cause inspection,
* :mod:`repro.experiments.figures` -- the data series behind the two
  motivating figures (Figures 1 and 2),
* :mod:`repro.experiments.ablations` -- reproduction-specific ablations
  (sliding-window length, derived variables, smoothing, security margin),
* :mod:`repro.experiments.lifecycle` -- the adaptive-lifecycle extension:
  a morphing fault (memory leak turning into a thread leak) streamed
  through a static champion and the drift-detecting, retraining
  :class:`~repro.lifecycle.ManagedOnlineMonitor` side by side,
* :mod:`repro.experiments.cluster` -- the fleet-scale extension: coordinated
  rolling predictive rejuvenation of a load-balanced cluster versus the
  no-rejuvenation and uncoordinated time-based baselines.

``repro.experiments.scenarios`` holds the shared scenario definitions and
``repro.experiments.runner`` the trace-generation helpers they build on.

.. note::
   Calling the drivers below directly is soft-deprecated for experiment
   execution: every one of them is registered in :mod:`repro.api` and the
   preferred entry point is ``repro.api.run(name, **params)`` (or the
   ``repro`` CLI), which adds uniform ``scale``/``seed``/``engine``
   parameters and a serializable :class:`~repro.api.RunResult` envelope.
   The functions remain the underlying implementations and keep working.
"""

from repro.experiments.ablations import (
    run_derived_variable_ablation,
    run_security_margin_sweep,
    run_smoothing_ablation,
    run_window_sweep,
)
from repro.experiments.cluster import (
    ClusterExperimentResult,
    run_cluster_experiment,
    run_cluster_policy,
    train_cluster_predictor,
)
from repro.experiments.exp41 import Experiment41Result, run_experiment_41
from repro.experiments.exp42 import Experiment42Result, run_experiment_42
from repro.experiments.exp43 import Experiment43Result, run_experiment_43
from repro.experiments.exp44 import Experiment44Result, run_experiment_44
from repro.experiments.figures import figure1_series, figure2_series
from repro.experiments.lifecycle import (
    LifecycleExperimentResult,
    run_lifecycle_experiment,
    run_morphing_trace,
    train_static_champion,
)
from repro.experiments.runner import (
    run_memory_leak_trace,
    run_no_injection_trace,
    run_periodic_pattern_trace,
    run_thread_leak_trace,
    run_two_resource_trace,
)
from repro.experiments.scenarios import ClusterScenario, ExperimentScenarios

__all__ = [
    "ClusterExperimentResult",
    "ClusterScenario",
    "Experiment41Result",
    "Experiment42Result",
    "Experiment43Result",
    "Experiment44Result",
    "ExperimentScenarios",
    "LifecycleExperimentResult",
    "figure1_series",
    "figure2_series",
    "run_cluster_experiment",
    "run_cluster_policy",
    "run_derived_variable_ablation",
    "run_experiment_41",
    "run_experiment_42",
    "run_experiment_43",
    "run_experiment_44",
    "run_lifecycle_experiment",
    "run_memory_leak_trace",
    "run_morphing_trace",
    "run_no_injection_trace",
    "run_periodic_pattern_trace",
    "run_security_margin_sweep",
    "run_smoothing_ablation",
    "run_thread_leak_trace",
    "run_two_resource_trace",
    "run_window_sweep",
    "train_cluster_predictor",
    "train_static_champion",
]
