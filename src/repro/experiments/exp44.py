"""Experiment 4.4 -- aging caused by two resources at once (Figure 5).

Setup (Section 4.4): memory and threads are injected simultaneously, with
rates that change every 30 minutes: a no-injection phase, then
``N = 30 / M = 30, T = 90``, then ``N = 15 / M = 15, T = 120``, and finally
``N = 75 / M = 45, T = 60`` until the crash.  Crucially, the training set
never contains a run where both resources age at the same time: it holds
memory-only runs (``N = 15, 30, 75``) and thread-only runs
(``(M, T) = (15, 120), (30, 90), (45, 60)``), six executions in total.

The paper reports MAE 16:52, S-MAE 13:22, PRE-MAE 18:16 and POST-MAE 2:05 on
a run lasting 1 h 55 min, and closes with the root-cause observation: the
top levels of the learned tree test the system memory and the number of
threads, pointing an administrator at the two resources actually involved.
``run_experiment_44`` reproduces the accuracy figures, the Figure 5 series
and that root-cause inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import PredictionEvaluation
from repro.core.feature_selection import select_heap_variables
from repro.core.features import FeatureCatalog
from repro.core.predictor import AgingPredictor
from repro.core.root_cause import RootCauseReport, analyse_root_cause
from repro.experiments.runner import (
    run_memory_leak_trace,
    run_no_injection_trace,
    run_thread_leak_trace,
    run_two_resource_trace,
)
from repro.experiments.scenarios import ExperimentScenarios
from repro.testbed.monitoring.collector import Trace

__all__ = ["Experiment44Result", "run_experiment_44"]


@dataclass
class Experiment44Result:
    """Accuracy, Figure 5 series and root-cause report of Experiment 4.4."""

    m5p_evaluation: PredictionEvaluation
    linear_evaluation: PredictionEvaluation
    root_cause: RootCauseReport
    times: np.ndarray
    predicted_ttf: np.ndarray
    true_ttf: np.ndarray
    tomcat_memory_mb: np.ndarray
    num_threads: np.ndarray
    phase_starts: tuple[float, ...]
    crash_resource: str = ""
    training_instances: int = 0
    m5p_leaves: int = 0
    m5p_inner_nodes: int = 0
    test_duration_seconds: float = 0.0

    def figure5_series(self) -> dict[str, np.ndarray]:
        """The Figure 5 curves: prediction, memory and thread evolution."""
        return {
            "time_seconds": self.times,
            "predicted_ttf_seconds": self.predicted_ttf,
            "tomcat_memory_mb": self.tomcat_memory_mb,
            "num_threads": self.num_threads,
        }

    def implicates_memory_and_threads(self) -> bool:
        """Whether the tree inspection points at both injected resources."""
        implicated = {name for name, _score in self.root_cause.resources}
        return bool(implicated & {"memory", "heap", "system"}) and "threads" in implicated


def run_experiment_44(
    scenarios: ExperimentScenarios | None = None,
    engine: str = "event",
) -> Experiment44Result:
    """Regenerate Experiment 4.4 / Figure 5 and the root-cause inspection.

    Prefer the unified entry point ``repro.api.run("exp44", ...)``; this
    function remains as the underlying driver.  ``engine`` selects the
    simulation engine of every generated trace.
    """
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    workload = active.workload_42

    training: list[Trace] = []
    for index, rate in enumerate(active.memory_rates_44):
        training.append(
            run_memory_leak_trace(
                active.config, workload, n=rate, seed=active.seed_for(400 + index), engine=engine
            )
        )
    for index, (m, t) in enumerate(active.thread_rates_44):
        training.append(
            run_thread_leak_trace(
                active.config, workload, m=m, t=t, seed=active.seed_for(410 + index), engine=engine
            )
        )

    phases = [
        (index * active.phase_seconds_44, n, m, t)
        for index, (n, m, t) in enumerate(active.test_phases_44)
    ]
    test_trace = run_two_resource_trace(
        active.config, workload, phases=phases, seed=active.seed_for(450), engine=engine
    )
    if not test_trace.crashed:
        raise RuntimeError("the two-resource run did not crash; increase the injection rates")

    # The paper's two-resource experiment keeps the heap internals out of the
    # picture (as in Experiment 4.1): the point is that the model must find
    # the implicated resources from the system-level metrics alone.
    catalog = FeatureCatalog()
    heap_names = set(select_heap_variables(catalog))
    feature_names = [name for name in catalog.feature_names if name not in heap_names]

    m5p = AgingPredictor(model="m5p", feature_names=feature_names).fit(training)
    linear = AgingPredictor(model="linear", feature_names=feature_names).fit(training)

    return Experiment44Result(
        m5p_evaluation=m5p.evaluate_trace(test_trace),
        linear_evaluation=linear.evaluate_trace(test_trace),
        root_cause=analyse_root_cause(m5p.model),
        times=test_trace.times(),
        predicted_ttf=m5p.predict_trace(test_trace),
        true_ttf=test_trace.time_to_failure(),
        tomcat_memory_mb=test_trace.series("tomcat_memory_used_mb"),
        num_threads=test_trace.series("num_threads"),
        phase_starts=tuple(start for start, *_rest in phases),
        crash_resource=test_trace.crash_resource or "",
        training_instances=m5p.num_training_instances,
        m5p_leaves=m5p.num_leaves or 0,
        m5p_inner_nodes=m5p.num_inner_nodes or 0,
        test_duration_seconds=test_trace.crash_time_seconds or test_trace.duration_seconds,
    )
