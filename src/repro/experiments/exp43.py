"""Experiment 4.3 -- aging hidden inside a periodic pattern (Figure 4, Table 4).

Setup (Section 4.3): the application cycles through 20-minute phases of
normal behaviour, memory acquisition (``N = 30``) and memory release
(``N = 75``) under a constant 100-EB workload.  Because release is slower
than acquisition some memory is retained every cycle, so the run eventually
crashes -- aging masked by a periodic pattern.  The training set is the same
as Experiment 4.2 (no periodic executions at all).

The paper's first attempt with the full variable set gave poor results; an
expert feature selection keeping only the Java-Heap-related variables fixed
it.  Table 4 reports, for the selected variable set, MAE 3:34 / S-MAE 0:21 /
PRE-MAE 3:31 / POST-MAE 5:29 for M5P against 15:57 / 4:53 / 16:10 / 8:14 for
Linear Regression.  ``run_experiment_43`` regenerates both the full-set and
the selected-set figures so the value of the selection step is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import PredictionEvaluation, format_duration
from repro.core.feature_selection import select_heap_variables
from repro.core.predictor import AgingPredictor
from repro.experiments.runner import (
    run_memory_leak_trace,
    run_no_injection_trace,
    run_periodic_pattern_trace,
)
from repro.experiments.scenarios import ExperimentScenarios
from repro.testbed.monitoring.collector import Trace

__all__ = ["Experiment43Result", "run_experiment_43"]


@dataclass
class Experiment43Result:
    """Accuracy of the full and heap-selected variable sets (Table 4)."""

    m5p_selected: PredictionEvaluation
    linear_selected: PredictionEvaluation
    m5p_full: PredictionEvaluation
    linear_full: PredictionEvaluation
    times: np.ndarray
    true_ttf: np.ndarray
    predicted_ttf_selected: np.ndarray
    jvm_heap_used_mb: np.ndarray
    selected_m5p_leaves: int = 0
    selected_m5p_inner_nodes: int = 0
    test_duration_seconds: float = 0.0

    def table4_rows(self) -> list[tuple[str, str, str]]:
        """Rows shaped like the paper's Table 4 (feature-selected models)."""
        rows = []
        for metric in ("MAE", "S-MAE", "PRE-MAE", "POST-MAE"):
            rows.append(
                (
                    metric,
                    format_duration(self.linear_selected.as_dict()[metric]),
                    format_duration(self.m5p_selected.as_dict()[metric]),
                )
            )
        return rows

    def format_table(self) -> str:
        lines = [f"{'':12s}{'Lin Reg':>18s}{'M5P':>18s}"]
        for label, linear, m5p in self.table4_rows():
            lines.append(f"{label:12s}{linear:>18s}{m5p:>18s}")
        return "\n".join(lines)

    def figure4_series(self) -> dict[str, np.ndarray]:
        """The Figure 4 curves: predicted time and the Java heap evolution."""
        return {
            "time_seconds": self.times,
            "predicted_ttf_seconds": self.predicted_ttf_selected,
            "jvm_heap_used_mb": self.jvm_heap_used_mb,
        }

    def selection_helps_m5p(self) -> bool:
        """Whether the heap-variable selection improves M5P (the paper's point)."""
        return self.m5p_selected.mae_seconds <= self.m5p_full.mae_seconds

    def m5p_wins(self) -> bool:
        return self.m5p_selected.mae_seconds < self.linear_selected.mae_seconds


def run_experiment_43(
    scenarios: ExperimentScenarios | None = None,
    engine: str = "event",
) -> Experiment43Result:
    """Regenerate Experiment 4.3 / Figure 4 / Table 4.

    Prefer the unified entry point ``repro.api.run("exp43", ...)``; this
    function remains as the underlying driver.  ``engine`` selects the
    simulation engine of every generated trace.
    """
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    workload = active.workload_42

    training: list[Trace] = [
        run_no_injection_trace(
            active.config,
            workload,
            duration_seconds=active.healthy_run_seconds,
            seed=active.seed_for(300),
            engine=engine,
        )
    ]
    for index, rate in enumerate(rate for rate in active.training_rates_42 if rate is not None):
        training.append(
            run_memory_leak_trace(
                active.config, workload, n=rate, seed=active.seed_for(301 + index), engine=engine
            )
        )

    test_trace = run_periodic_pattern_trace(
        active.config,
        workload,
        phase_duration_s=active.phase_seconds_43,
        acquire_n=active.acquire_n_43,
        release_n=active.release_n_43,
        full_release=False,
        seed=active.seed_for(350),
        max_seconds=24 * 3600.0,
        engine=engine,
    )
    if not test_trace.crashed:
        raise RuntimeError(
            "the periodic-pattern run did not crash; the retained memory per cycle is too small"
        )

    heap_features = select_heap_variables()
    m5p_selected = AgingPredictor(model="m5p", feature_names=heap_features).fit(training)
    linear_selected = AgingPredictor(model="linear", feature_names=heap_features).fit(training)
    m5p_full = AgingPredictor(model="m5p").fit(training)
    linear_full = AgingPredictor(model="linear").fit(training)

    heap_used = test_trace.series("young_used_mb") + test_trace.series("old_used_mb")
    return Experiment43Result(
        m5p_selected=m5p_selected.evaluate_trace(test_trace),
        linear_selected=linear_selected.evaluate_trace(test_trace),
        m5p_full=m5p_full.evaluate_trace(test_trace),
        linear_full=linear_full.evaluate_trace(test_trace),
        times=test_trace.times(),
        true_ttf=test_trace.time_to_failure(),
        predicted_ttf_selected=m5p_selected.predict_trace(test_trace),
        jvm_heap_used_mb=heap_used,
        selected_m5p_leaves=m5p_selected.num_leaves or 0,
        selected_m5p_inner_nodes=m5p_selected.num_inner_nodes or 0,
        test_duration_seconds=test_trace.crash_time_seconds or test_trace.duration_seconds,
    )
