"""Experiment 4.1 -- deterministic software aging (the paper's Table 3).

Setup (Section 4.1 of the paper): a 1 MB memory leak with ``N = 30`` is
injected through the search servlet.  The model is trained on four runs at
25, 50, 100 and 200 emulated browsers, each executed until Tomcat crashes,
and evaluated on two unseen workloads (75 and 150 EBs).  The paper notes
that the heap-internal variables were *not* used in this experiment, so the
predictors here train on the non-heap subset of Table 2.

Table 3 reports MAE, S-MAE, PRE-MAE and POST-MAE for Linear Regression and
M5P on both test workloads; :func:`run_experiment_41` regenerates exactly
those rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.evaluation import PredictionEvaluation, format_duration
from repro.core.feature_selection import select_heap_variables
from repro.core.features import FeatureCatalog
from repro.core.predictor import AgingPredictor
from repro.experiments.runner import run_memory_leak_trace
from repro.experiments.scenarios import ExperimentScenarios
from repro.testbed.monitoring.collector import Trace

__all__ = ["Experiment41Result", "run_experiment_41"]


@dataclass
class Experiment41Result:
    """Everything the paper reports for Experiment 4.1.

    ``evaluations`` maps ``(test_workload, model_name)`` to the accuracy
    figures; model size and training-set size mirror the numbers quoted in
    the text (33 leaves / 30 inner nodes / 2776 instances in the paper).
    """

    evaluations: dict[tuple[int, str], PredictionEvaluation] = field(default_factory=dict)
    training_instances: int = 0
    m5p_leaves: int = 0
    m5p_inner_nodes: int = 0
    training_workloads: tuple[int, ...] = ()
    test_workloads: tuple[int, ...] = ()

    def table3_rows(self) -> list[tuple[str, str, str]]:
        """Rows shaped like the paper's Table 3: (row label, LinReg, M5P)."""
        rows: list[tuple[str, str, str]] = []
        for workload in self.test_workloads:
            for metric in ("MAE", "S-MAE", "PRE-MAE", "POST-MAE"):
                linear = self.evaluations[(workload, "linear")].as_dict()[metric]
                m5p = self.evaluations[(workload, "m5p")].as_dict()[metric]
                rows.append((f"{workload}EBs {metric}", format_duration(linear), format_duration(m5p)))
        return rows

    def format_table(self) -> str:
        """Render Table 3 as fixed-width text."""
        lines = [f"{'':24s}{'Lin. Reg':>18s}{'M5P':>18s}"]
        for label, linear, m5p in self.table3_rows():
            lines.append(f"{label:24s}{linear:>18s}{m5p:>18s}")
        return "\n".join(lines)

    def m5p_wins(self, metric: str = "MAE") -> bool:
        """Whether M5P beats Linear Regression on every test workload."""
        return all(
            self.evaluations[(workload, "m5p")].as_dict()[metric]
            < self.evaluations[(workload, "linear")].as_dict()[metric]
            for workload in self.test_workloads
        )


def _non_heap_feature_names() -> list[str]:
    """The Table 2 variable set without the heap internals (paper, Sec. 4.1)."""
    catalog = FeatureCatalog()
    heap_names = set(select_heap_variables(catalog))
    return [name for name in catalog.feature_names if name not in heap_names]


def run_experiment_41(
    scenarios: ExperimentScenarios | None = None,
    traces: dict[int, Trace] | None = None,
    engine: str = "event",
) -> Experiment41Result:
    """Regenerate Experiment 4.1 / Table 3.

    Prefer the unified entry point ``repro.api.run("exp41", ...)``; this
    function remains as the underlying driver.

    Parameters
    ----------
    scenarios:
        Experiment parameters; defaults to the paper-scale configuration.
    traces:
        Optional pre-generated traces keyed by workload (useful to share runs
        between the experiment and ablations); missing workloads are
        simulated on demand.
    engine:
        Simulation engine for every generated trace (``"event"`` or
        ``"per_second"``); both are bit-for-bit identical given the seed.
    """
    active = scenarios if scenarios is not None else ExperimentScenarios.paper_scale()
    cache = dict(traces) if traces is not None else {}

    def trace_for(workload: int, run_index: int) -> Trace:
        if workload not in cache:
            cache[workload] = run_memory_leak_trace(
                active.config,
                workload_ebs=workload,
                n=active.memory_n_41,
                seed=active.seed_for(run_index),
                engine=engine,
            )
        return cache[workload]

    training = [trace_for(workload, index) for index, workload in enumerate(active.training_workloads_41)]
    tests = {
        workload: trace_for(workload, 100 + index)
        for index, workload in enumerate(active.test_workloads_41)
    }

    feature_names = _non_heap_feature_names()
    m5p = AgingPredictor(model="m5p", feature_names=feature_names).fit(training)
    linear = AgingPredictor(model="linear", feature_names=feature_names).fit(training)

    result = Experiment41Result(
        training_instances=m5p.num_training_instances,
        m5p_leaves=m5p.num_leaves or 0,
        m5p_inner_nodes=m5p.num_inner_nodes or 0,
        training_workloads=tuple(active.training_workloads_41),
        test_workloads=tuple(active.test_workloads_41),
    )
    for workload, trace in tests.items():
        result.evaluations[(workload, "m5p")] = m5p.evaluate_trace(trace)
        result.evaluations[(workload, "linear")] = linear.evaluate_trace(trace)
    return result
