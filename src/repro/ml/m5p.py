"""M5P model trees: binary trees with linear-regression leaves.

This is the learner the paper is built around (Section 2.2).  An M5P model is
a binary decision tree whose inner nodes test ``variable <= value`` and whose
leaves hold a linear model; the intuition is that a globally nonlinear
behaviour -- such as the time-to-failure of an aging application whose heap
periodically resizes -- is piecewise linear, and the tree's job is to find the
pieces.

The implementation follows Quinlan's M5 as refined by Wang & Witten (the M5'
algorithm WEKA ships as ``M5P``):

1. **Growing** -- nodes are split on the attribute/threshold pair that
   maximises the *standard deviation reduction*
   ``SDR = sd(T) - sum(|T_i|/|T| * sd(T_i))``; growth stops when a node holds
   fewer than twice the minimum leaf count or its standard deviation drops
   below 5 % of the root's.
2. **Linear models** -- every node receives a linear model fitted on its own
   rows, restricted to the attributes tested in the subtree below it (plus
   greedy Akaike elimination), so leaf models stay small and interpretable.
3. **Pruning** -- bottom-up, a subtree is replaced by its node's linear model
   whenever the model's *adjusted* error ``MAE * (n + v) / (n - v)`` is no
   worse than the subtree's adjusted error.
4. **Smoothing** -- predictions are filtered up the path to the root with
   ``p' = (n*p + k*q) / (n + k)`` (``k = 15``), which reduces discontinuities
   between adjacent leaves.

The paper trains M5P with 10 instances per leaf and reports the number of
leaves and inner nodes of every model; both are exposed here
(:attr:`M5PModelTree.num_leaves`, :attr:`M5PModelTree.num_inner_nodes`) so the
experiments can report the same model-size figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.ml.linear_regression import LinearRegressionModel

__all__ = ["M5PModelTree", "M5Node"]

_SMOOTHING_CONSTANT = 15.0


@dataclass
class M5Node:
    """A node of the M5P tree.

    Every node keeps the linear model fitted on its training rows: leaves use
    it for prediction, inner nodes use it for pruning decisions and for
    smoothing predictions on the way back to the root.
    """

    num_samples: int
    depth: int
    mean: float
    std: float
    model: LinearRegressionModel | None = None
    split_attribute: int | None = None
    split_value: float = 0.0
    left: "M5Node | None" = None
    right: "M5Node | None" = None
    subtree_attributes: set[int] = field(default_factory=set)

    @property
    def is_leaf(self) -> bool:
        return self.split_attribute is None

    def iter_nodes(self) -> Iterator["M5Node"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        if self.left is not None:
            yield from self.left.iter_nodes()
        if self.right is not None:
            yield from self.right.iter_nodes()


class M5PModelTree:
    """M5P model-tree learner (the paper's prediction algorithm).

    Parameters
    ----------
    min_instances:
        Minimum number of training rows per leaf.  The paper uses 10.
    smoothing:
        Apply Quinlan's smoothing filter along the root path at prediction
        time (WEKA's default behaviour).
    prune:
        Perform bottom-up subtree replacement.  Disabling it yields the
        "unpruned" trees WEKA calls ``-N``; useful for ablations.
    min_std_fraction:
        Stop splitting once a node's target standard deviation falls below
        this fraction of the root's (0.05 in M5').
    attribute_names:
        Optional names used by :meth:`describe` and the root-cause analysis.
    """

    def __init__(
        self,
        min_instances: int = 10,
        smoothing: bool = True,
        prune: bool = True,
        min_std_fraction: float = 0.05,
        attribute_names: Sequence[str] | None = None,
    ) -> None:
        if min_instances < 1:
            raise ValueError("min_instances must be at least 1")
        if not 0.0 <= min_std_fraction < 1.0:
            raise ValueError("min_std_fraction must be in [0, 1)")
        self.min_instances = min_instances
        self.smoothing = smoothing
        self.prune = prune
        self.min_std_fraction = min_std_fraction
        self._given_names = list(attribute_names) if attribute_names is not None else None
        self._root: M5Node | None = None
        self._names: list[str] = []

    # ------------------------------------------------------------------ fit

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "M5PModelTree":
        """Grow, fit leaf models, prune and return the fitted tree."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError("features must be 2-D and targets 1-D with matching row counts")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a model tree on zero rows")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise ValueError("features and targets must be finite")
        self._names = self._resolve_names(x.shape[1])
        root_std = float(np.std(y))
        self._root = self._grow(x, y, depth=0, root_std=root_std)
        self._fit_models(self._root, x, y)
        if self.prune:
            self._prune(self._root, x, y)
        return self

    def _resolve_names(self, dimension: int) -> list[str]:
        if self._given_names is None:
            return [f"x{i}" for i in range(dimension)]
        if len(self._given_names) != dimension:
            raise ValueError("attribute_names length does not match the data")
        return list(self._given_names)

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int, root_std: float) -> M5Node:
        node = M5Node(
            num_samples=y.shape[0],
            depth=depth,
            mean=float(np.mean(y)),
            std=float(np.std(y)),
        )
        if self._should_stop(y, root_std):
            return node
        split = _best_sdr_split(x, y, self.min_instances)
        if split is None:
            return node
        attribute, threshold = split
        mask = x[:, attribute] <= threshold
        node.split_attribute = attribute
        node.split_value = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, root_std)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, root_std)
        node.subtree_attributes = {attribute} | node.left.subtree_attributes | node.right.subtree_attributes
        return node

    def _should_stop(self, y: np.ndarray, root_std: float) -> bool:
        if y.shape[0] < 2 * self.min_instances:
            return True
        if float(np.std(y)) <= self.min_std_fraction * root_std:
            return True
        return False

    def _fit_models(
        self, node: M5Node, x: np.ndarray, y: np.ndarray, path_attributes: frozenset[int] = frozenset()
    ) -> None:
        """Fit a linear model at *every* node.

        Following M5, each node's model only uses attributes that are tested
        in the subtree below it or on the path leading to it.  Keeping the
        models small is what makes them readable and -- just as important for
        time-to-failure prediction -- keeps them from extrapolating wildly
        when a test run wanders outside the training region of a leaf.  A
        single-node tree (no splits anywhere) falls back to all attributes so
        it degenerates gracefully to plain linear regression.
        """
        relevant = node.subtree_attributes | path_attributes
        allowed = sorted(relevant) if relevant else list(range(x.shape[1]))
        node.model = _fit_restricted_model(x, y, allowed, self._names)
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        child_path = frozenset(path_attributes | {node.split_attribute})
        mask = x[:, node.split_attribute] <= node.split_value
        self._fit_models(node.left, x[mask], y[mask], child_path)
        self._fit_models(node.right, x[~mask], y[~mask], child_path)

    # -------------------------------------------------------------- pruning

    def _prune(self, node: M5Node, x: np.ndarray, y: np.ndarray) -> None:
        """Bottom-up subtree replacement by the node's own linear model."""
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        mask = x[:, node.split_attribute] <= node.split_value
        self._prune(node.left, x[mask], y[mask])
        self._prune(node.right, x[~mask], y[~mask])
        subtree_error = self._adjusted_subtree_error(node, x, y)
        model_error = self._adjusted_model_error(node, x, y)
        # The small tolerance makes the comparison robust to floating-point
        # and ridge-shrinkage noise when both errors are essentially zero
        # (purely linear data); it is negligible against any real error.
        tolerance = 1e-6 * max(node.std, abs(node.mean), 1.0)
        if model_error <= subtree_error + tolerance:
            node.split_attribute = None
            node.left = None
            node.right = None

    def _adjusted_model_error(self, node: M5Node, x: np.ndarray, y: np.ndarray) -> float:
        assert node.model is not None
        predictions = node.model.predict(x)
        mae = float(np.mean(np.abs(y - predictions)))
        return mae * _error_adjustment(y.shape[0], node.model.num_parameters)

    def _adjusted_subtree_error(self, node: M5Node, x: np.ndarray, y: np.ndarray) -> float:
        """Weighted adjusted error of the children, as used by M5 pruning."""
        assert node.left is not None and node.right is not None
        mask = x[:, node.split_attribute] <= node.split_value
        total = y.shape[0]
        error = 0.0
        for child, child_x, child_y in (
            (node.left, x[mask], y[mask]),
            (node.right, x[~mask], y[~mask]),
        ):
            if child_y.shape[0] == 0:
                continue
            if child.is_leaf:
                child_error = self._adjusted_model_error(child, child_x, child_y)
            else:
                child_error = self._adjusted_subtree_error(child, child_x, child_y)
            error += child_y.shape[0] / total * child_error
        return error

    # -------------------------------------------------------------- predict

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict targets for a matrix (or a single row vector)."""
        root = self._require_fitted()
        x = np.asarray(features, dtype=float)
        single = x.ndim == 1
        if single:
            x = x.reshape(1, -1)
        predictions = np.array([self._predict_row(root, row) for row in x])
        return predictions[0] if single else predictions

    def predict_one(self, row: Sequence[float]) -> float:
        return float(self.predict(np.asarray(row, dtype=float)))

    def _predict_row(self, root: M5Node, row: np.ndarray) -> float:
        path: list[M5Node] = []
        node = root
        while not node.is_leaf:
            path.append(node)
            assert node.left is not None and node.right is not None
            node = node.left if row[node.split_attribute] <= node.split_value else node.right
        assert node.model is not None
        prediction = node.model.predict_one(row)
        if not self.smoothing:
            return prediction
        child_samples = node.num_samples
        for ancestor in reversed(path):
            assert ancestor.model is not None
            ancestor_prediction = ancestor.model.predict_one(row)
            prediction = (child_samples * prediction + _SMOOTHING_CONSTANT * ancestor_prediction) / (
                child_samples + _SMOOTHING_CONSTANT
            )
            child_samples = ancestor.num_samples
        return prediction

    # ----------------------------------------------------------- inspection

    def _require_fitted(self) -> M5Node:
        if self._root is None:
            raise RuntimeError("the model tree has not been fitted yet")
        return self._root

    @property
    def is_fitted(self) -> bool:
        return self._root is not None

    @property
    def root(self) -> M5Node:
        return self._require_fitted()

    @property
    def attribute_names(self) -> list[str]:
        self._require_fitted()
        return list(self._names)

    @property
    def num_leaves(self) -> int:
        return sum(1 for node in self._require_fitted().iter_nodes() if node.is_leaf)

    @property
    def num_inner_nodes(self) -> int:
        return sum(1 for node in self._require_fitted().iter_nodes() if not node.is_leaf)

    @property
    def depth(self) -> int:
        return max(node.depth for node in self._require_fitted().iter_nodes())

    def split_attribute_counts(self) -> dict[str, int]:
        """Number of inner nodes testing each attribute."""
        counts: dict[str, int] = {}
        for node in self._require_fitted().iter_nodes():
            if node.is_leaf:
                continue
            name = self._names[node.split_attribute]
            counts[name] = counts.get(name, 0) + 1
        return counts

    def split_attribute_levels(self) -> dict[str, int]:
        """Shallowest depth at which each attribute is tested.

        Section 4.4 of the paper inspects the first levels of the tree to
        identify the resources implicated in the failure; this map is the
        machine-readable version of that inspection.
        """
        levels: dict[str, int] = {}
        for node in self._require_fitted().iter_nodes():
            if node.is_leaf:
                continue
            name = self._names[node.split_attribute]
            if name not in levels or node.depth < levels[name]:
                levels[name] = node.depth
        return levels

    def describe(self, precision: int = 4) -> str:
        """Indented textual rendering of the tree and its leaf models."""
        lines: list[str] = []
        self._describe_node(self._require_fitted(), lines, indent=0, precision=precision)
        return "\n".join(lines)

    def _describe_node(self, node: M5Node, lines: list[str], indent: int, precision: int) -> None:
        pad = "  " * indent
        if node.is_leaf:
            assert node.model is not None
            lines.append(f"{pad}LM ({node.num_samples} rows): {node.model.describe(precision)}")
            return
        name = self._names[node.split_attribute]
        lines.append(f"{pad}{name} <= {node.split_value:.{precision}g}:")
        assert node.left is not None and node.right is not None
        self._describe_node(node.left, lines, indent + 1, precision)
        lines.append(f"{pad}{name} > {node.split_value:.{precision}g}:")
        self._describe_node(node.right, lines, indent + 1, precision)


def _error_adjustment(rows: int, parameters: int) -> float:
    """M5's pessimistic error multiplier ``(n + v) / (n - v)``."""
    if rows <= parameters:
        return float(rows + parameters)
    return (rows + parameters) / (rows - parameters)


def _fit_restricted_model(
    x: np.ndarray, y: np.ndarray, allowed: Sequence[int], names: Sequence[str]
) -> LinearRegressionModel:
    """Fit a linear model using only the ``allowed`` columns of ``x``.

    The returned model still accepts full-width rows (eliminated columns get
    zero coefficients), which keeps prediction code independent of which
    attributes each node was allowed to use.  Node models rely on the
    standardisation inside :class:`LinearRegressionModel` to stay numerically
    stable on small row subsets of highly collinear derived variables.
    """
    model = LinearRegressionModel(eliminate_attributes=True, attribute_names=list(names))
    if len(allowed) == x.shape[1]:
        return model.fit(x, y)
    masked = np.zeros_like(x)
    masked[:, list(allowed)] = x[:, list(allowed)]
    return model.fit(masked, y)


def _best_sdr_split(x: np.ndarray, y: np.ndarray, min_instances: int) -> tuple[int, float] | None:
    """Return the (attribute, threshold) maximising standard deviation reduction.

    Thresholds are midpoints between consecutive distinct sorted values; both
    sides must keep at least ``min_instances`` rows.  Returns ``None`` when no
    admissible split reduces the standard deviation.
    """
    rows = y.shape[0]
    if rows < 2 * min_instances:
        return None
    parent_std = float(np.std(y))
    if parent_std <= 1e-12:
        return None
    best: tuple[float, int, float] | None = None
    for attribute in range(x.shape[1]):
        order = np.argsort(x[:, attribute], kind="mergesort")
        values = x[order, attribute]
        sorted_y = y[order]
        cumulative = np.cumsum(sorted_y)
        cumulative_sq = np.cumsum(sorted_y**2)
        total = cumulative[-1]
        total_sq = cumulative_sq[-1]
        for cut in range(min_instances, rows - min_instances + 1):
            if values[cut - 1] == values[cut]:
                continue
            left_n = cut
            right_n = rows - cut
            left_var = cumulative_sq[cut - 1] / left_n - (cumulative[cut - 1] / left_n) ** 2
            right_sum = total - cumulative[cut - 1]
            right_sq = total_sq - cumulative_sq[cut - 1]
            right_var = right_sq / right_n - (right_sum / right_n) ** 2
            left_std = float(np.sqrt(max(left_var, 0.0)))
            right_std = float(np.sqrt(max(right_var, 0.0)))
            sdr = parent_std - (left_n / rows * left_std + right_n / rows * right_std)
            if sdr <= 1e-12:
                continue
            if best is None or sdr > best[0]:
                threshold = float((values[cut - 1] + values[cut]) / 2.0)
                best = (sdr, attribute, threshold)
    if best is None:
        return None
    return best[1], best[2]
