"""From-scratch machine-learning algorithms used by the aging predictor.

The paper relies on WEKA's M5P model-tree learner and its linear-regression
implementation.  Neither WEKA nor scikit-learn is a dependency of this
reproduction: every learner is implemented here on top of numpy so the whole
pipeline (splitting criteria, pruning, smoothing, attribute elimination) is
inspectable and testable.

Public learners
---------------
``LinearRegressionModel``
    Ordinary least squares with optional greedy attribute elimination, the
    paper's baseline (Tables 3 and 4).
``RegressionTree``
    A CART-style variance-reduction regression tree with constant leaves,
    the second baseline evaluated in the authors' preliminary work [14].
``M5PModelTree``
    The paper's chosen learner: a binary decision tree whose leaves hold
    linear models, grown with the standard-deviation-reduction criterion,
    pruned bottom-up and optionally smoothed.
``ARModel`` / ``ARMAModel``
    Time-series baselines in the spirit of Li, Vaidyanathan & Trivedi [26].
``NaiveSlopePredictor``
    The analytic Equation (1) predictor: remaining resource divided by the
    recent consumption speed.
"""

from repro.ml.arma import ARMAModel, ARModel
from repro.ml.linear_regression import LinearRegressionModel
from repro.ml.m5p import M5PModelTree
from repro.ml.metrics import (
    mean_absolute_error,
    mean_squared_error,
    pearson_correlation,
    r_squared,
    root_mean_squared_error,
)
from repro.ml.naive import NaiveSlopePredictor
from repro.ml.regression_tree import RegressionTree

__all__ = [
    "ARModel",
    "ARMAModel",
    "LinearRegressionModel",
    "M5PModelTree",
    "NaiveSlopePredictor",
    "RegressionTree",
    "mean_absolute_error",
    "mean_squared_error",
    "pearson_correlation",
    "r_squared",
    "root_mean_squared_error",
]
