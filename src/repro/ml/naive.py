"""The analytic Equation (1) predictor: remaining resource over recent speed.

Section 2 of the paper opens with the "perfect and easy world" formula

    TTF_i = (Rmax_i - R_{i,t}) / S_i

where ``Rmax`` is the resource capacity, ``R_{i,t}`` the amount used now and
``S_i`` the consumption speed.  The paper's motivating examples show why this
is too naive (heap resizes, periodic patterns, several resources at once), but
it is still the natural straw-man baseline, so the reproduction implements it
faithfully: the speed is estimated from a sliding window of recent samples and
the formula is applied directly.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

__all__ = ["NaiveSlopePredictor"]


class NaiveSlopePredictor:
    """Sliding-window slope extrapolation of a single resource.

    Parameters
    ----------
    capacity:
        The exhaustion level ``Rmax`` of the monitored resource.
    window:
        Number of recent observations used to estimate the consumption speed
        (a least-squares slope over the window, which is less noisy than the
        last pairwise difference).
    horizon_cap:
        Upper bound returned when the resource is not being consumed (or is
        being released); mirrors the paper's convention of declaring a large
        finite value ("3 hours") instead of infinity.
    """

    def __init__(self, capacity: float, window: int = 12, horizon_cap: float = 10_800.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if window < 2:
            raise ValueError("window must hold at least 2 observations")
        if horizon_cap <= 0:
            raise ValueError("horizon_cap must be positive")
        self.capacity = capacity
        self.window = window
        self.horizon_cap = horizon_cap
        self._times: deque[float] = deque(maxlen=window)
        self._values: deque[float] = deque(maxlen=window)

    def observe(self, time_seconds: float, used: float) -> None:
        """Record one monitoring sample of the resource."""
        if self._times and time_seconds <= self._times[-1]:
            raise ValueError("observations must have strictly increasing timestamps")
        self._times.append(float(time_seconds))
        self._values.append(float(used))

    def reset(self) -> None:
        """Forget all recorded observations."""
        self._times.clear()
        self._values.clear()

    @property
    def num_observations(self) -> int:
        return len(self._values)

    def consumption_speed(self) -> float:
        """Least-squares slope (units of resource per second) over the window."""
        if len(self._values) < 2:
            return 0.0
        times = np.array(self._times, dtype=float)
        values = np.array(self._values, dtype=float)
        centred = times - times.mean()
        denominator = float(np.sum(centred**2))
        if denominator <= 1e-12:
            return 0.0
        return float(np.sum(centred * (values - values.mean())) / denominator)

    def predict_time_to_failure(self) -> float:
        """Equation (1): seconds until the resource reaches its capacity.

        Returns ``horizon_cap`` when the current speed is non-positive (no
        aging visible from this window) and 0 when the resource is already at
        or beyond capacity.
        """
        if not self._values:
            return self.horizon_cap
        remaining = self.capacity - self._values[-1]
        if remaining <= 0:
            return 0.0
        speed = self.consumption_speed()
        if speed <= 1e-12:
            return self.horizon_cap
        return float(min(remaining / speed, self.horizon_cap))

    def predict_series(self, times: Sequence[float], values: Sequence[float]) -> np.ndarray:
        """Replay a full trace and return the prediction after every sample."""
        times_arr = np.asarray(times, dtype=float)
        values_arr = np.asarray(values, dtype=float)
        if times_arr.shape != values_arr.shape:
            raise ValueError("times and values must have the same length")
        self.reset()
        predictions = np.empty(times_arr.shape[0])
        for index, (timestamp, used) in enumerate(zip(times_arr, values_arr)):
            self.observe(float(timestamp), float(used))
            predictions[index] = self.predict_time_to_failure()
        return predictions
