"""CART-style regression tree with constant-valued leaves.

This is the "decision tree" baseline of the authors' preliminary comparison
(reference [14] of the paper): a binary tree grown by variance reduction whose
leaves predict the mean target of the training rows that reached them.  It
shares the splitting machinery with :mod:`repro.ml.m5p` conceptually but is
kept independent so that each learner is self-contained and readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["RegressionTree", "TreeNode"]


@dataclass
class TreeNode:
    """A node of the regression tree.

    Leaves have ``split_attribute is None`` and predict ``value``; inner nodes
    route a row to ``left`` when ``row[split_attribute] <= split_value`` and to
    ``right`` otherwise.
    """

    value: float
    num_samples: int
    depth: int
    split_attribute: int | None = None
    split_value: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.split_attribute is None

    def iter_nodes(self) -> Iterator["TreeNode"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        if self.left is not None:
            yield from self.left.iter_nodes()
        if self.right is not None:
            yield from self.right.iter_nodes()


class RegressionTree:
    """Binary regression tree grown by variance reduction.

    Parameters
    ----------
    min_samples_leaf:
        Minimum number of training rows in each child of a split.  The paper
        configures M5P with 10 instances per leaf; the same default is used
        here so the baselines are comparable.
    max_depth:
        Hard cap on tree depth; ``None`` means unbounded.
    min_variance_fraction:
        A node is not split further once its target standard deviation falls
        below this fraction of the root's standard deviation (same stopping
        rule as M5).
    attribute_names:
        Optional names used by :meth:`describe`.
    """

    def __init__(
        self,
        min_samples_leaf: int = 10,
        max_depth: int | None = None,
        min_variance_fraction: float = 0.05,
        attribute_names: Sequence[str] | None = None,
    ) -> None:
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1 when given")
        if not 0.0 <= min_variance_fraction < 1.0:
            raise ValueError("min_variance_fraction must be in [0, 1)")
        self.min_samples_leaf = min_samples_leaf
        self.max_depth = max_depth
        self.min_variance_fraction = min_variance_fraction
        self._given_names = list(attribute_names) if attribute_names is not None else None
        self._root: TreeNode | None = None
        self._names: list[str] = []

    # ------------------------------------------------------------------ fit

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "RegressionTree":
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError("features must be 2-D and targets 1-D with matching row counts")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero rows")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise ValueError("features and targets must be finite")
        self._names = self._resolve_names(x.shape[1])
        root_std = float(np.std(y))
        self._root = self._grow(x, y, depth=0, root_std=root_std)
        return self

    def _resolve_names(self, dimension: int) -> list[str]:
        if self._given_names is None:
            return [f"x{i}" for i in range(dimension)]
        if len(self._given_names) != dimension:
            raise ValueError("attribute_names length does not match the data")
        return list(self._given_names)

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int, root_std: float) -> TreeNode:
        node = TreeNode(value=float(np.mean(y)), num_samples=y.shape[0], depth=depth)
        if self._should_stop(y, depth, root_std):
            return node
        split = _best_variance_split(x, y, self.min_samples_leaf)
        if split is None:
            return node
        attribute, threshold = split
        mask = x[:, attribute] <= threshold
        node.split_attribute = attribute
        node.split_value = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, root_std)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, root_std)
        return node

    def _should_stop(self, y: np.ndarray, depth: int, root_std: float) -> bool:
        if y.shape[0] < 2 * self.min_samples_leaf:
            return True
        if self.max_depth is not None and depth >= self.max_depth:
            return True
        if float(np.std(y)) <= self.min_variance_fraction * root_std:
            return True
        return False

    # -------------------------------------------------------------- predict

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        root = self._require_fitted()
        x = np.asarray(features, dtype=float)
        single = x.ndim == 1
        if single:
            x = x.reshape(1, -1)
        predictions = np.array([self._predict_row(root, row) for row in x])
        return predictions[0] if single else predictions

    def predict_one(self, row: Sequence[float]) -> float:
        return float(self.predict(np.asarray(row, dtype=float)))

    def _predict_row(self, node: TreeNode, row: np.ndarray) -> float:
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if row[node.split_attribute] <= node.split_value else node.right
        return node.value

    # ----------------------------------------------------------- inspection

    def _require_fitted(self) -> TreeNode:
        if self._root is None:
            raise RuntimeError("the tree has not been fitted yet")
        return self._root

    @property
    def is_fitted(self) -> bool:
        return self._root is not None

    @property
    def root(self) -> TreeNode:
        return self._require_fitted()

    @property
    def num_leaves(self) -> int:
        return sum(1 for node in self._require_fitted().iter_nodes() if node.is_leaf)

    @property
    def num_inner_nodes(self) -> int:
        return sum(1 for node in self._require_fitted().iter_nodes() if not node.is_leaf)

    @property
    def depth(self) -> int:
        return max(node.depth for node in self._require_fitted().iter_nodes())

    def split_attribute_counts(self) -> dict[str, int]:
        """How many inner nodes test each attribute (root-cause signal)."""
        counts: dict[str, int] = {}
        for node in self._require_fitted().iter_nodes():
            if node.is_leaf:
                continue
            name = self._names[node.split_attribute]
            counts[name] = counts.get(name, 0) + 1
        return counts

    def split_attribute_levels(self) -> dict[str, int]:
        """Shallowest depth at which each attribute is tested."""
        levels: dict[str, int] = {}
        for node in self._require_fitted().iter_nodes():
            if node.is_leaf:
                continue
            name = self._names[node.split_attribute]
            if name not in levels or node.depth < levels[name]:
                levels[name] = node.depth
        return levels

    def describe(self, precision: int = 4) -> str:
        """Indented textual rendering of the tree."""
        lines: list[str] = []
        self._describe_node(self._require_fitted(), lines, indent=0, precision=precision)
        return "\n".join(lines)

    def _describe_node(self, node: TreeNode, lines: list[str], indent: int, precision: int) -> None:
        pad = "  " * indent
        if node.is_leaf:
            lines.append(f"{pad}leaf: {node.value:.{precision}g} ({node.num_samples} rows)")
            return
        name = self._names[node.split_attribute]
        lines.append(f"{pad}{name} <= {node.split_value:.{precision}g}?")
        assert node.left is not None and node.right is not None
        self._describe_node(node.left, lines, indent + 1, precision)
        lines.append(f"{pad}{name} > {node.split_value:.{precision}g}?")
        self._describe_node(node.right, lines, indent + 1, precision)


def _best_variance_split(
    x: np.ndarray, y: np.ndarray, min_samples_leaf: int
) -> tuple[int, float] | None:
    """Return the (attribute, threshold) that maximises variance reduction.

    Candidate thresholds are midpoints between consecutive distinct sorted
    values.  The reduction is computed with cumulative sums so the scan over
    thresholds for one attribute is O(n log n) (dominated by the sort).
    Returns ``None`` when no split satisfies the ``min_samples_leaf``
    constraint or none reduces the variance.
    """
    rows = y.shape[0]
    if rows < 2 * min_samples_leaf:
        return None
    parent_sse = float(np.sum((y - y.mean()) ** 2))
    best: tuple[float, int, float] | None = None
    for attribute in range(x.shape[1]):
        order = np.argsort(x[:, attribute], kind="mergesort")
        values = x[order, attribute]
        sorted_y = y[order]
        cumulative = np.cumsum(sorted_y)
        cumulative_sq = np.cumsum(sorted_y**2)
        total = cumulative[-1]
        total_sq = cumulative_sq[-1]
        for cut in range(min_samples_leaf, rows - min_samples_leaf + 1):
            if values[cut - 1] == values[cut]:
                continue
            left_n = cut
            right_n = rows - cut
            left_sum = cumulative[cut - 1]
            left_sq = cumulative_sq[cut - 1]
            right_sum = total - left_sum
            right_sq = total_sq - left_sq
            left_sse = left_sq - left_sum**2 / left_n
            right_sse = right_sq - right_sum**2 / right_n
            gain = parent_sse - (left_sse + right_sse)
            if gain <= 1e-12:
                continue
            if best is None or gain > best[0]:
                threshold = float((values[cut - 1] + values[cut]) / 2.0)
                best = (gain, attribute, threshold)
    if best is None:
        return None
    return best[1], best[2]
