"""Autoregressive time-series baselines for resource-exhaustion estimation.

The related work the paper positions itself against (Li, Vaidyanathan &
Trivedi, "An Approach for Estimation of Software Aging in a Web Server")
estimates resource exhaustion with ARMA time-series models fitted to the
resource usage signal.  These baselines assume a *single, known* aging
resource and a roughly stationary trend -- exactly the assumptions the paper
argues break down in dynamic scenarios -- so having them in the reproduction
lets the benchmarks show where the trade-off lies.

Two learners are provided:

``ARModel``
    A pure autoregressive model of order *p*, fitted by conditional least
    squares on the (optionally differenced) series.
``ARMAModel``
    AR plus a moving-average component estimated with the two-stage
    Hannan–Rissanen procedure (long-AR residuals as innovation proxies).

Both expose :meth:`forecast` for multi-step extrapolation and
:meth:`time_to_threshold`, which walks the forecast until the modelled
resource crosses an exhaustion threshold -- the ARMA way of answering the
paper's time-to-failure question.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ARModel", "ARMAModel"]


class ARModel:
    """Autoregressive model ``x_t = c + sum_i phi_i * x_{t-i} + e_t``.

    Parameters
    ----------
    order:
        Number of autoregressive lags *p*.
    difference:
        When true the model is fitted on the first differences of the series
        and forecasts are re-integrated; this is the usual way to model a
        trending resource-consumption signal with an AR process.
    """

    def __init__(self, order: int = 2, difference: bool = True) -> None:
        if order < 1:
            raise ValueError("order must be at least 1")
        self.order = order
        self.difference = difference
        self._coefficients: np.ndarray | None = None
        self._intercept: float = 0.0
        self._history: np.ndarray | None = None

    # ------------------------------------------------------------------ fit

    def fit(self, series: Sequence[float]) -> "ARModel":
        """Fit the AR coefficients on an observed series."""
        values = np.asarray(series, dtype=float)
        if values.ndim != 1:
            raise ValueError("series must be one-dimensional")
        if not np.all(np.isfinite(values)):
            raise ValueError("series must be finite")
        working = np.diff(values) if self.difference else values.copy()
        if working.shape[0] <= self.order + 1:
            raise ValueError(
                f"series too short for an AR({self.order}) model: "
                f"need more than {self.order + 1} usable points, got {working.shape[0]}"
            )
        design = _lag_matrix(working, self.order)
        target = working[self.order :]
        augmented = np.column_stack([design, np.ones(design.shape[0])])
        solution, *_ = np.linalg.lstsq(augmented, target, rcond=None)
        self._coefficients = solution[:-1]
        self._intercept = float(solution[-1])
        self._history = values.copy()
        return self

    # ------------------------------------------------------------- forecast

    def forecast(self, steps: int) -> np.ndarray:
        """Extrapolate the fitted series ``steps`` points into the future."""
        if steps < 1:
            raise ValueError("steps must be at least 1")
        coefficients, history = self._require_fitted()
        working = np.diff(history) if self.difference else history.copy()
        buffer = list(working[-self.order :])
        level = float(history[-1])
        output: list[float] = []
        for _ in range(steps):
            lags = np.array(buffer[-self.order :][::-1])
            nxt = float(coefficients @ lags + self._intercept)
            buffer.append(nxt)
            if self.difference:
                level += nxt
                output.append(level)
            else:
                output.append(nxt)
        return np.array(output)

    def time_to_threshold(self, threshold: float, max_steps: int = 100_000, rising: bool = True) -> float | None:
        """Number of future steps until the forecast crosses ``threshold``.

        Returns ``None`` when the forecast never crosses within ``max_steps``
        (the AR answer to "no aging detected").  ``rising`` selects whether
        exhaustion means the signal growing above the threshold (used memory)
        or falling below it (free memory).
        """
        forecast = self.forecast(max_steps)
        if rising:
            hits = np.nonzero(forecast >= threshold)[0]
        else:
            hits = np.nonzero(forecast <= threshold)[0]
        if hits.size == 0:
            return None
        return float(hits[0] + 1)

    # ----------------------------------------------------------- inspection

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._coefficients is None or self._history is None:
            raise RuntimeError("the AR model has not been fitted yet")
        return self._coefficients, self._history

    @property
    def is_fitted(self) -> bool:
        return self._coefficients is not None

    @property
    def coefficients(self) -> np.ndarray:
        return self._require_fitted()[0].copy()

    @property
    def intercept(self) -> float:
        self._require_fitted()
        return self._intercept


class ARMAModel:
    """ARMA(p, q) fitted with the two-stage Hannan–Rissanen procedure.

    Stage one fits a long AR model to approximate the innovations; stage two
    regresses the series on its own lags *and* the lagged innovation
    estimates.  This avoids nonlinear optimisation while capturing the
    short-memory corrections an MA component provides.
    """

    def __init__(self, ar_order: int = 2, ma_order: int = 1, difference: bool = True) -> None:
        if ar_order < 1:
            raise ValueError("ar_order must be at least 1")
        if ma_order < 0:
            raise ValueError("ma_order must be non-negative")
        self.ar_order = ar_order
        self.ma_order = ma_order
        self.difference = difference
        self._ar_coefficients: np.ndarray | None = None
        self._ma_coefficients: np.ndarray | None = None
        self._intercept: float = 0.0
        self._history: np.ndarray | None = None
        self._residuals: np.ndarray | None = None

    def fit(self, series: Sequence[float]) -> "ARMAModel":
        values = np.asarray(series, dtype=float)
        if values.ndim != 1:
            raise ValueError("series must be one-dimensional")
        if not np.all(np.isfinite(values)):
            raise ValueError("series must be finite")
        working = np.diff(values) if self.difference else values.copy()
        long_order = max(self.ar_order + self.ma_order, self.ar_order) + 2
        if working.shape[0] <= long_order + self.ar_order + self.ma_order + 1:
            raise ValueError("series too short for the requested ARMA orders")

        # Stage 1: long AR fit to estimate innovations.
        long_design = _lag_matrix(working, long_order)
        long_target = working[long_order:]
        long_aug = np.column_stack([long_design, np.ones(long_design.shape[0])])
        long_solution, *_ = np.linalg.lstsq(long_aug, long_target, rcond=None)
        innovations = long_target - long_aug @ long_solution
        padded = np.concatenate([np.zeros(long_order), innovations])

        # Stage 2: regress on AR lags and lagged innovations jointly.
        start = max(self.ar_order, self.ma_order)
        rows = working.shape[0] - start
        design_columns: list[np.ndarray] = []
        for lag in range(1, self.ar_order + 1):
            design_columns.append(working[start - lag : start - lag + rows])
        for lag in range(1, self.ma_order + 1):
            design_columns.append(padded[start - lag : start - lag + rows])
        design = np.column_stack(design_columns) if design_columns else np.zeros((rows, 0))
        augmented = np.column_stack([design, np.ones(rows)])
        target = working[start:]
        solution, *_ = np.linalg.lstsq(augmented, target, rcond=None)
        self._ar_coefficients = solution[: self.ar_order]
        self._ma_coefficients = solution[self.ar_order : self.ar_order + self.ma_order]
        self._intercept = float(solution[-1])
        self._history = values.copy()
        self._residuals = padded
        return self

    def forecast(self, steps: int) -> np.ndarray:
        """Extrapolate ``steps`` points; future innovations are taken as zero."""
        if steps < 1:
            raise ValueError("steps must be at least 1")
        if self._ar_coefficients is None or self._history is None or self._residuals is None:
            raise RuntimeError("the ARMA model has not been fitted yet")
        working = np.diff(self._history) if self.difference else self._history.copy()
        series_buffer = list(working)
        residual_buffer = list(self._residuals)
        level = float(self._history[-1])
        output: list[float] = []
        for _ in range(steps):
            value = self._intercept
            for lag in range(1, self.ar_order + 1):
                value += float(self._ar_coefficients[lag - 1]) * series_buffer[-lag]
            for lag in range(1, self.ma_order + 1):
                value += float(self._ma_coefficients[lag - 1]) * residual_buffer[-lag]
            series_buffer.append(value)
            residual_buffer.append(0.0)
            if self.difference:
                level += value
                output.append(level)
            else:
                output.append(value)
        return np.array(output)

    def time_to_threshold(self, threshold: float, max_steps: int = 100_000, rising: bool = True) -> float | None:
        """Steps until the forecast crosses ``threshold`` (see :class:`ARModel`)."""
        forecast = self.forecast(max_steps)
        hits = np.nonzero(forecast >= threshold)[0] if rising else np.nonzero(forecast <= threshold)[0]
        if hits.size == 0:
            return None
        return float(hits[0] + 1)

    @property
    def is_fitted(self) -> bool:
        return self._ar_coefficients is not None


def _lag_matrix(series: np.ndarray, order: int) -> np.ndarray:
    """Build the lagged design matrix for conditional least squares."""
    rows = series.shape[0] - order
    matrix = np.empty((rows, order))
    for lag in range(1, order + 1):
        matrix[:, lag - 1] = series[order - lag : order - lag + rows]
    return matrix
