"""Regression quality metrics shared by all learners.

These are the plain statistical metrics (MAE, MSE, RMSE, R^2, correlation).
The paper's domain-specific accuracy measures -- S-MAE with the 10 % security
margin, PRE-MAE and POST-MAE -- live in :mod:`repro.core.evaluation` because
they need the time axis of a prediction trace, not just two vectors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "r_squared",
    "pearson_correlation",
    "mean_absolute_percentage_error",
]


def _as_arrays(y_true: Sequence[float], y_pred: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Validate and convert two equally sized sequences to float arrays."""
    true_arr = np.asarray(y_true, dtype=float)
    pred_arr = np.asarray(y_pred, dtype=float)
    if true_arr.ndim != 1 or pred_arr.ndim != 1:
        raise ValueError("metric inputs must be one-dimensional sequences")
    if true_arr.shape != pred_arr.shape:
        raise ValueError(
            f"y_true and y_pred must have the same length, got {true_arr.shape[0]} and {pred_arr.shape[0]}"
        )
    if true_arr.size == 0:
        raise ValueError("metric inputs must not be empty")
    return true_arr, pred_arr


def mean_absolute_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Average of ``|y_true - y_pred|`` (the paper's MAE, Section 2.2)."""
    true_arr, pred_arr = _as_arrays(y_true, y_pred)
    return float(np.mean(np.abs(true_arr - pred_arr)))


def mean_squared_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Average of the squared residuals."""
    true_arr, pred_arr = _as_arrays(y_true, y_pred)
    return float(np.mean((true_arr - pred_arr) ** 2))


def root_mean_squared_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Square root of :func:`mean_squared_error`."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_percentage_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """MAE expressed relative to the true value, ignoring zero targets.

    Useful to compare errors across experiments whose time-to-failure scales
    differ (the paper notes that 200 s over 1000 s is not the same as 2 min
    over 10 min).
    """
    true_arr, pred_arr = _as_arrays(y_true, y_pred)
    nonzero = np.abs(true_arr) > 1e-12
    if not np.any(nonzero):
        raise ValueError("all true values are zero; MAPE is undefined")
    ratios = np.abs(true_arr[nonzero] - pred_arr[nonzero]) / np.abs(true_arr[nonzero])
    return float(np.mean(ratios))


def r_squared(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Coefficient of determination; 1.0 is perfect, 0.0 matches the mean."""
    true_arr, pred_arr = _as_arrays(y_true, y_pred)
    ss_res = float(np.sum((true_arr - pred_arr) ** 2))
    ss_tot = float(np.sum((true_arr - np.mean(true_arr)) ** 2))
    if ss_tot <= 1e-12:
        # A constant target: perfect only if residuals are (numerically) zero.
        return 1.0 if ss_res <= 1e-12 else 0.0
    return 1.0 - ss_res / ss_tot


def pearson_correlation(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Pearson correlation between true and predicted values.

    Returns 0.0 when either vector is constant (the correlation is undefined
    there, and "no linear relationship" is the safe interpretation for model
    diagnostics).
    """
    true_arr, pred_arr = _as_arrays(y_true, y_pred)
    std_true = float(np.std(true_arr))
    std_pred = float(np.std(pred_arr))
    if std_true <= 1e-12 or std_pred <= 1e-12:
        return 0.0
    cov = float(np.mean((true_arr - true_arr.mean()) * (pred_arr - pred_arr.mean())))
    return cov / (std_true * std_pred)
