"""Ordinary least-squares linear regression with greedy attribute elimination.

This is the baseline the paper compares M5P against (Tables 3 and 4) and it is
also the building block used inside every M5P leaf.  The implementation
mirrors the behaviour of WEKA's ``LinearRegression`` closely enough for the
reproduction:

* the model is fitted by least squares on standardised attributes (a tiny
  ridge term keeps the normal equations well conditioned when attributes are
  collinear, which happens constantly with the Table 2 derived variables);
* attributes can be eliminated greedily using the Akaike information
  criterion, so the final model only keeps variables that pay for themselves
  -- this is what makes the per-leaf models of M5P small and readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["LinearRegressionModel"]


@dataclass
class _FittedState:
    """Internal container for everything produced by :meth:`fit`."""

    coefficients: np.ndarray
    intercept: float
    selected: list[int]
    attribute_names: list[str]
    training_rows: int
    training_sse: float


class LinearRegressionModel:
    """Least-squares linear model ``y = intercept + sum(coef_i * x_i)``.

    Parameters
    ----------
    eliminate_attributes:
        When true (the default, matching WEKA), attributes are greedily
        dropped while doing so improves the Akaike criterion
        ``SSE * (n + 2k) / n`` where *k* is the number of retained attributes.
    ridge:
        Small L2 regularisation added to the normal equations for numerical
        stability.  It is not meant as a tuning knob; the default keeps
        collinear derived variables from blowing up the coefficients.
    attribute_names:
        Optional names used by :meth:`describe`; defaults to ``x0..x{d-1}``.
    """

    def __init__(
        self,
        eliminate_attributes: bool = True,
        ridge: float = 1e-8,
        attribute_names: Sequence[str] | None = None,
    ) -> None:
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.eliminate_attributes = eliminate_attributes
        self.ridge = ridge
        self._given_names = list(attribute_names) if attribute_names is not None else None
        self._state: _FittedState | None = None

    # ------------------------------------------------------------------ fit

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "LinearRegressionModel":
        """Fit the model on a feature matrix and a target vector.

        Rows with non-finite values are rejected with ``ValueError`` --
        upstream feature engineering is responsible for producing clean
        matrices, and silently dropping rows would skew time-to-failure
        labelling.
        """
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if x.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if y.ndim != 1:
            raise ValueError("targets must be a 1-D vector")
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets must have the same number of rows")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a linear model on zero rows")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise ValueError("features and targets must be finite")

        names = self._resolve_names(x.shape[1])
        candidate = list(range(x.shape[1]))
        coefs, intercept, sse = self._solve(x, y, candidate)

        if self.eliminate_attributes and len(candidate) > 1:
            candidate, coefs, intercept, sse = self._greedy_eliminate(x, y, candidate)

        full_coefs = np.zeros(x.shape[1], dtype=float)
        for position, column in enumerate(candidate):
            full_coefs[column] = coefs[position]
        self._state = _FittedState(
            coefficients=full_coefs,
            intercept=intercept,
            selected=list(candidate),
            attribute_names=names,
            training_rows=x.shape[0],
            training_sse=sse,
        )
        return self

    def _resolve_names(self, dimension: int) -> list[str]:
        if self._given_names is None:
            return [f"x{i}" for i in range(dimension)]
        if len(self._given_names) != dimension:
            raise ValueError(
                f"attribute_names has {len(self._given_names)} entries but the data has {dimension} columns"
            )
        return list(self._given_names)

    def _solve(
        self, x: np.ndarray, y: np.ndarray, columns: Sequence[int]
    ) -> tuple[np.ndarray, float, float]:
        """Solve the (ridge-stabilised) normal equations on a column subset.

        Attributes are standardised (zero mean, unit variance) before solving
        so the ridge term treats wildly different feature scales -- raw
        megabytes next to ``1/speed`` values in the millions -- evenly; the
        returned coefficients are mapped back to the original scale.
        """
        if len(columns) == 0:
            intercept = float(np.mean(y))
            sse = float(np.sum((y - intercept) ** 2))
            return np.zeros(0), intercept, sse
        subset = x[:, list(columns)]
        means = subset.mean(axis=0)
        scales = subset.std(axis=0)
        scales = np.where(scales <= 1e-12, 1.0, scales)
        standardised = (subset - means) / scales
        design = np.column_stack([standardised, np.ones(standardised.shape[0])])
        gram = design.T @ design
        if self.ridge > 0:
            penalty = np.eye(design.shape[1]) * self.ridge * design.shape[0]
            penalty[-1, -1] = 0.0  # never penalise the intercept
            gram = gram + penalty
        try:
            solution = np.linalg.solve(gram, design.T @ y)
        except np.linalg.LinAlgError:
            solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        scaled_coefs = solution[:-1]
        coefs = scaled_coefs / scales
        intercept = float(solution[-1] - np.sum(scaled_coefs * means / scales))
        residuals = y - (subset @ coefs + intercept)
        return coefs, intercept, float(np.sum(residuals**2))

    def _akaike(self, sse: float, rows: int, attributes: int) -> float:
        """WEKA-style Akaike criterion used to decide attribute elimination."""
        effective = max(rows - attributes, 1)
        return sse * (rows + 2.0 * attributes) / effective

    def _greedy_eliminate(
        self, x: np.ndarray, y: np.ndarray, columns: list[int]
    ) -> tuple[list[int], np.ndarray, float, float]:
        current = list(columns)
        coefs, intercept, sse = self._solve(x, y, current)
        best_score = self._akaike(sse, x.shape[0], len(current))
        improved = True
        while improved and len(current) > 1:
            improved = False
            best_removal: tuple[float, int, np.ndarray, float, float] | None = None
            for column in current:
                trial = [c for c in current if c != column]
                trial_coefs, trial_intercept, trial_sse = self._solve(x, y, trial)
                score = self._akaike(trial_sse, x.shape[0], len(trial))
                if score < best_score and (best_removal is None or score < best_removal[0]):
                    best_removal = (score, column, trial_coefs, trial_intercept, trial_sse)
            if best_removal is not None:
                best_score, removed, coefs, intercept, sse = best_removal
                current = [c for c in current if c != removed]
                improved = True
        return current, coefs, intercept, sse

    # -------------------------------------------------------------- predict

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict targets for a feature matrix (or a single row).

        The dot products accumulate sequentially in feature order, one row at
        a time.  A BLAS ``x @ coefficients`` would be faster on huge matrices
        but its SIMD kernels pick accumulation orders based on the operands'
        memory alignment, so the *same* row can predict differently as a view
        versus a copy -- poison for the streaming monitor, whose incremental
        single-row predictions must match batch replays bit-for-bit.
        """
        state = self._require_fitted()
        x = np.asarray(features, dtype=float)
        single = x.ndim == 1
        if single:
            x = x.reshape(1, -1)
        if x.shape[1] != state.coefficients.shape[0]:
            raise ValueError(
                f"expected {state.coefficients.shape[0]} features, got {x.shape[1]}"
            )
        coefficients = state.coefficients.tolist()
        intercept = state.intercept
        predictions = np.empty(x.shape[0])
        for index, row in enumerate(x.tolist()):
            total = 0.0
            for value, coefficient in zip(row, coefficients):
                total += value * coefficient
            predictions[index] = total + intercept
        return predictions[0] if single else predictions

    def predict_one(self, row: Sequence[float]) -> float:
        """Predict a single row and return a plain float."""
        return float(self.predict(np.asarray(row, dtype=float)))

    # ----------------------------------------------------------- inspection

    def _require_fitted(self) -> _FittedState:
        if self._state is None:
            raise RuntimeError("the model has not been fitted yet")
        return self._state

    @property
    def is_fitted(self) -> bool:
        return self._state is not None

    @property
    def coefficients(self) -> np.ndarray:
        """Dense coefficient vector (zeros for eliminated attributes)."""
        return self._require_fitted().coefficients.copy()

    @property
    def intercept(self) -> float:
        return self._require_fitted().intercept

    @property
    def selected_attributes(self) -> list[int]:
        """Indices of attributes retained after greedy elimination."""
        return list(self._require_fitted().selected)

    @property
    def num_parameters(self) -> int:
        """Number of non-intercept terms kept in the model."""
        return len(self._require_fitted().selected)

    @property
    def training_sse(self) -> float:
        """Sum of squared errors on the training data."""
        return self._require_fitted().training_sse

    def describe(self, precision: int = 4) -> str:
        """Human-readable equation, e.g. ``y = 0.52*mem_speed + 12.1``."""
        state = self._require_fitted()
        terms: list[str] = []
        for column in state.selected:
            coefficient = state.coefficients[column]
            if abs(coefficient) < 10 ** (-precision):
                continue
            terms.append(f"{coefficient:+.{precision}g}*{state.attribute_names[column]}")
        terms.append(f"{state.intercept:+.{precision}g}")
        equation = " ".join(terms)
        return f"y = {equation}"
