"""Coordinated rolling rejuvenation of a load-balanced server fleet.

The paper predicts the time to crash of one Tomcat+MySQL server and restarts
it before the failure.  This example scales that loop to the setting real
deployments face -- a fleet of aging servers behind a load balancer -- and
compares three ways of operating it on the same seeded scenario:

1. no rejuvenation: every node runs to its crash;
2. uncoordinated time-based restarts: each node independently restarts after
   a fixed uptime (half the smallest crash time ever observed).  Nothing
   staggers the nodes, so the implicitly synchronised fleet restarts
   together and the service goes dark;
3. coordinated rolling predictive rejuvenation: every node streams its
   monitoring marks through the fitted M5P predictor, the aging-aware
   balancer sheds traffic away from nodes forecast to crash, and alarmed
   nodes are drained and restarted one at a time under a minimum-capacity
   floor.

The fleet runs on the event-driven ``ClusterEngine``: nodes advance in
exact batches between interesting events (requests, monitoring marks,
injector firings, drains and restarts) instead of paying a Python loop over
every node every simulated second.  Pick the fleet aging scenario with::

    python examples/cluster_rolling_rejuvenation.py [memory|threads|two_resource]

``threads`` drives the Experiment 4.4 thread leak; ``two_resource`` injects
memory and threads at once, so the forecast must catch whichever resource
exhausts first.
"""

import sys

from repro.experiments import ClusterScenario, run_cluster_experiment


def main() -> None:
    kind = sys.argv[1] if len(sys.argv) > 1 else "memory"
    scenario = ClusterScenario.fast(kind=kind)
    faults = {
        "memory": f"N={scenario.memory_n} memory leak",
        "threads": f"M={scenario.thread_m}/T={scenario.thread_t}s thread leak",
        "two_resource": (
            f"N={scenario.memory_n} memory leak + "
            f"M={scenario.thread_m}/T={scenario.thread_t}s thread leak"
        ),
    }[kind]
    print(
        f"Operating a {scenario.num_nodes}-node fleet ({scenario.total_ebs} emulated browsers, "
        f"{faults}) for {scenario.horizon_seconds / 3600.0:.0f} h "
        "under three strategies...\n"
    )
    result = run_cluster_experiment(scenario)

    print(
        f"Predictor trained on {len(result.training_crash_seconds)} failure runs "
        f"(crashes at {', '.join(f'{t:.0f}s' for t in result.training_crash_seconds)}); "
        f"time-based baseline restarts every {result.time_based_interval_seconds:.0f}s.\n"
    )

    header = (
        f"{'strategy':28s}{'availability':>14s}{'full outage':>13s}{'crashes':>9s}"
        f"{'restarts':>10s}{'min active':>12s}{'served':>9s}"
    )
    print(header)
    print("-" * len(header))
    for name, outcome in result.outcomes().items():
        print(
            f"{name:28s}{outcome.availability:>14.4f}{outcome.full_outage_seconds:>12.0f}s"
            f"{outcome.crashes:>9d}{outcome.rejuvenations:>10d}"
            f"{f'{outcome.min_active_nodes}/{outcome.num_nodes}':>12s}"
            f"{outcome.request_success_rate:>9.2%}"
        )

    rolling = result.rolling_predictive
    print("\nPer-node accounting of the rolling predictive fleet:")
    for node in rolling.per_node:
        print(
            f"  node {node.node_id}: availability {node.availability:.4f}, "
            f"{node.rejuvenations} rolling restarts, {node.crashes} crashes, "
            f"{node.requests_served} requests served"
        )

    print(
        "\nCoordinated rolling predictive rejuvenation "
        + ("wins" if result.rolling_wins() else "does NOT win")
        + ": strictly higher fleet availability than both baselines and "
        f"{rolling.full_outage_seconds:.0f} seconds of full outage."
    )


if __name__ == "__main__":
    main()
