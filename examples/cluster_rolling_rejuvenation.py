"""Coordinated rolling rejuvenation of a load-balanced server fleet.

The paper predicts the time to crash of one Tomcat+MySQL server and restarts
it before the failure.  This example scales that loop to the setting real
deployments face — a fleet of aging servers behind a load balancer — and
compares three ways of operating it on the same seeded scenario:

1. no rejuvenation: every node runs to its crash;
2. uncoordinated time-based restarts: each node independently restarts after
   a fixed uptime (half the smallest crash time ever observed).  Nothing
   staggers the nodes, so the implicitly synchronised fleet restarts
   together and the service goes dark;
3. coordinated rolling predictive rejuvenation: every node streams its
   monitoring marks through the fitted M5P predictor, the aging-aware
   balancer sheds traffic away from nodes forecast to crash, and alarmed
   nodes are drained and restarted one at a time under a minimum-capacity
   floor.

The comparison runs through the unified API — equivalently::

    repro run cluster --scale small -p kind=memory --out results/cluster.json

Pick the fleet aging scenario with::

    python examples/cluster_rolling_rejuvenation.py [memory|threads|two_resource]

``threads`` drives the Experiment 4.4 thread leak; ``two_resource`` injects
memory and threads at once, so the forecast must catch whichever resource
exhausts first.
"""

import sys

from repro import api

POLICIES = ("no_rejuvenation", "time_based", "rolling_predictive")


def main() -> None:
    kind = sys.argv[1] if len(sys.argv) > 1 else "memory"
    spec = api.get_spec("cluster")
    print(f"{spec.description}\n  fleet aging scenario: {kind}\n")

    result = api.run("cluster", scale="small", kind=kind)

    training_crashes = result.series["training_crash_seconds"]
    print(
        f"Predictor trained on {len(training_crashes)} failure runs "
        f"(crashes at {', '.join(f'{t:.0f}s' for t in training_crashes)}); "
        f"time-based baseline restarts every "
        f"{result.metrics['time_based_interval_seconds']:.0f}s.\n"
    )

    header = (
        f"{'strategy':22s}{'availability':>14s}{'full outage':>13s}{'crashes':>9s}"
        f"{'restarts':>10s}{'served':>9s}"
    )
    print(header)
    print("-" * len(header))
    for policy in POLICIES:
        print(
            f"{policy:22s}"
            f"{result.metrics[f'{policy}.availability']:>14.4f}"
            f"{result.metrics[f'{policy}.full_outage_seconds']:>12.0f}s"
            f"{result.metrics[f'{policy}.crashes']:>9d}"
            f"{result.metrics[f'{policy}.rejuvenations']:>10d}"
            f"{result.metrics[f'{policy}.request_success_rate']:>9.2%}"
        )

    print("\nPer-node availability of the rolling predictive fleet:")
    for node_id, availability in enumerate(result.series["rolling_predictive.per_node_availability"]):
        print(f"  node {node_id}: {availability:.4f}")

    print(
        "\nCoordinated rolling predictive rejuvenation "
        + ("wins" if result.metrics["rolling_wins"] else "does NOT win")
        + ": strictly higher fleet availability than both baselines and "
        f"{result.metrics['rolling_predictive.full_outage_seconds']:.0f} seconds of full outage."
    )
    print(f"\n(ran in {result.wall_clock_seconds:.1f}s; "
          "serialize it with: repro run cluster --scale small --out results/cluster.json)")


if __name__ == "__main__":
    main()
