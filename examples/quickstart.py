"""Quickstart: the unified experiment API in five lines.

Every experiment of the reproduction — the Section 4 drivers, the motivating
figures, the ablations and the fleet-scale cluster comparison — is a named
entry in one registry and runs through one call::

    from repro import api
    result = api.run("exp41", scale="small", seed=7)

The returned ``RunResult`` is a uniform, serializable envelope: resolved
parameters, a flat metrics dict, the data series behind the figures, and
provenance (package version, engine, seed).  ``to_json``/``from_json``
round-trip it losslessly, and equal seeds give byte-identical JSON.

The same registry powers the command line::

    repro list
    repro describe exp41
    repro run exp41 --scale small --seed 7 --out results/exp41.json
    repro batch 'exp4*' --scale small --out-dir results

Run this script with::

    python examples/quickstart.py
"""

from pathlib import Path

from repro import api


def main() -> None:
    print("Registered experiments:")
    for name in api.list_experiments():
        spec = api.get_spec(name)
        print(f"  {name:20s} [{spec.category}] {spec.description}")

    print("\nRunning Experiment 4.1 (Table 3) at the small scale...")
    result = api.run("exp41", scale="small", seed=7)
    print(result.summary())

    print("\nM5P versus Linear Regression on the unseen test workloads:")
    for workload in (int(w) for w in result.series["test_workloads"]):
        m5p = result.metrics[f"{workload}ebs.m5p.mae_seconds"]
        linear = result.metrics[f"{workload}ebs.linear.mae_seconds"]
        print(f"  {workload:3d} EBs: M5P MAE {m5p:7.1f}s   LinReg MAE {linear:7.1f}s")
    print(f"  M5P wins on every workload: {result.metrics['m5p_wins']}")

    out_file = Path("results") / "exp41-small.json"
    out_file.parent.mkdir(parents=True, exist_ok=True)
    out_file.write_text(result.to_json() + "\n")
    reloaded = api.RunResult.from_json(out_file.read_text())
    print(f"\nSerialized to {out_file} and reloaded: lossless = {reloaded == result}")


if __name__ == "__main__":
    main()
