"""Quickstart: predict the time to failure of an aging web application.

This example walks through the whole pipeline of the paper in a few lines:

1. simulate two *training* runs of the three-tier TPC-W testbed in which a
   memory leak is injected through the search servlet until Tomcat crashes;
2. train the M5P-based ``AgingPredictor`` on the Table 2 variable set
   (raw metrics plus sliding-window consumption speeds);
3. simulate a *test* run at a workload never seen during training;
4. predict the time to failure at every monitoring mark and score the
   predictions with the paper's measures (MAE, S-MAE, PRE-MAE, POST-MAE).

Run it with::

    python examples/quickstart.py
"""

from repro.core import AgingPredictor, format_duration
from repro.testbed import MemoryLeakInjector, TestbedConfig, TestbedSimulation


def simulate_aging_run(workload_ebs: int, n: int, seed: int):
    """One testbed run with a 1 MB memory leak injected every ~N/2 searches."""
    config = TestbedConfig().scaled_for_fast_runs(4.0)  # small heap -> quick demo
    simulation = TestbedSimulation(
        config=config,
        workload_ebs=workload_ebs,
        injectors=[MemoryLeakInjector(n=n, leak_mb=1.0, seed=seed)],
        seed=seed,
    )
    return simulation.run(max_seconds=12 * 3600)


def main() -> None:
    print("Simulating two training runs (this takes a few seconds)...")
    training_traces = [
        simulate_aging_run(workload_ebs=50, n=30, seed=1),
        simulate_aging_run(workload_ebs=150, n=30, seed=2),
    ]
    for trace in training_traces:
        print(
            f"  {trace.workload_ebs:>3d} EBs -> crash after {format_duration(trace.crash_time_seconds)}"
            f" ({len(trace)} monitoring marks)"
        )

    print("Training the M5P aging predictor on the Table 2 variable set...")
    predictor = AgingPredictor(model="m5p").fit(training_traces)
    print(f"  model tree: {predictor.num_leaves} leaves, trained on {predictor.num_training_instances} instances")

    print("Simulating a test run at an unseen workload (100 EBs)...")
    test_trace = simulate_aging_run(workload_ebs=100, n=30, seed=7)
    print(f"  crash after {format_duration(test_trace.crash_time_seconds)}")

    evaluation = predictor.evaluate_trace(test_trace)
    print("Prediction accuracy on the unseen run:")
    print(f"  {evaluation.summary()}")

    predictions = predictor.predict_trace(test_trace)
    true_ttf = test_trace.time_to_failure()
    print("Sample predictions (true vs predicted time to failure):")
    for index in range(0, len(test_trace), max(len(test_trace) // 8, 1)):
        print(
            f"  t={test_trace.samples[index].time_seconds:7.0f}s"
            f"  true {format_duration(true_ttf[index]):>15s}"
            f"  predicted {format_duration(predictions[index]):>15s}"
        )


if __name__ == "__main__":
    main()
