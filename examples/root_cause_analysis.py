"""Root-cause clues from the learned model tree (two-resource aging).

Section 4.4 of the paper ends with an observation the authors highlight as a
contribution in its own right: the structure of the learned M5P tree tells
an administrator *which resources* are implicated in the approaching
failure.  In their two-resource experiment the root of the tree tested the
system memory and the second level tested the number of threads -- exactly
the two resources being injected.

This example reproduces that workflow:

1. train the predictor on single-resource failure runs (memory-only and
   thread-only), as in Experiment 4.4;
2. let the testbed age through *both* resources at once -- a combination the
   model never saw;
3. print the learned tree, the ranked split variables and the implicated
   resources.

Run it with::

    python examples/root_cause_analysis.py
"""

from repro.core import AgingPredictor, analyse_root_cause, format_duration
from repro.core.feature_selection import select_heap_variables
from repro.core.features import FeatureCatalog
from repro.testbed import (
    MemoryLeakInjector,
    TestbedConfig,
    TestbedSimulation,
    ThreadLeakInjector,
)

CONFIG = TestbedConfig().scaled_for_fast_runs(4.0)
WORKLOAD_EBS = 80


def memory_run(n: int, seed: int):
    simulation = TestbedSimulation(
        config=CONFIG,
        workload_ebs=WORKLOAD_EBS,
        injectors=[MemoryLeakInjector(n=n, seed=seed)],
        seed=seed,
    )
    return simulation.run(max_seconds=12 * 3600)


def thread_run(m: int, t: int, seed: int):
    simulation = TestbedSimulation(
        config=CONFIG,
        workload_ebs=WORKLOAD_EBS,
        injectors=[ThreadLeakInjector(m=m, t=t, seed=seed)],
        seed=seed,
    )
    return simulation.run(max_seconds=12 * 3600)


def two_resource_run(seed: int):
    simulation = TestbedSimulation(
        config=CONFIG,
        workload_ebs=WORKLOAD_EBS,
        injectors=[
            MemoryLeakInjector(n=30, seed=seed),
            ThreadLeakInjector(m=10, t=60, seed=seed + 1),
        ],
        seed=seed,
    )
    return simulation.run(max_seconds=12 * 3600)


def main() -> None:
    print("Training on single-resource failure runs (memory-only, thread-only)...")
    training = [
        memory_run(n=15, seed=1),
        memory_run(n=30, seed=2),
        thread_run(m=10, t=60, seed=3),
        thread_run(m=20, t=45, seed=4),
    ]
    for trace in training:
        print(f"  crash from {trace.crash_resource:>7s} after {format_duration(trace.crash_time_seconds)}")

    # Like the paper's Experiment 4.4, work from the system-level metrics
    # (no heap internals): the point is to locate the resources from outside.
    catalog = FeatureCatalog()
    heap_names = set(select_heap_variables(catalog))
    feature_names = [name for name in catalog.feature_names if name not in heap_names]
    predictor = AgingPredictor(model="m5p", feature_names=feature_names).fit(training)

    print("\nAging both resources at once (never seen during training)...")
    test_trace = two_resource_run(seed=20)
    evaluation = predictor.evaluate_trace(test_trace)
    print(f"  crash from {test_trace.crash_resource} after {format_duration(test_trace.crash_time_seconds)}")
    print(f"  prediction accuracy: {evaluation.summary()}")

    print("\nFirst levels of the learned M5P tree:")
    for line in predictor.describe_model().splitlines()[:12]:
        print(f"  {line}")

    report = analyse_root_cause(predictor.model)
    print("\nRoot-cause inspection:")
    print(f"  {report.summary()}")
    print("  variables ranked by tree position:")
    for variable in report.variables[:5]:
        print(
            f"    {variable.name:45s} depth {variable.shallowest_depth}, "
            f"{variable.split_count} splits, score {variable.score:.2f}"
        )
    print(f"  primary implicated resource: {report.primary_resource}")


if __name__ == "__main__":
    main()
