"""Root-cause clues from the learned model tree (two-resource aging).

Section 4.4 of the paper ends with an observation the authors highlight as a
contribution in its own right: the structure of the learned M5P tree tells
an administrator *which resources* are implicated in the approaching
failure.  In their two-resource experiment the root of the tree tested the
system memory and the second level tested the number of threads — exactly
the two resources being injected.

The whole workflow is one call on the unified API (equivalently
``repro run exp44 --scale small``): train on single-resource failure runs,
age both resources at once — a combination the model never saw — and
inspect the ranked split variables.  The ``RunResult`` envelope carries the
root-cause scores as plain metrics; the second half of the example then
digs below the API to print the learned tree itself.

Run it with::

    python examples/root_cause_analysis.py
"""

from repro import api
from repro.core import format_duration


def main() -> None:
    print("Running Experiment 4.4 (two aging resources + root cause) through the API...")
    result = api.run("exp44", scale="small", seed=7)

    print(f"  crash from {result.metrics['crash_resource']} after "
          f"{format_duration(result.metrics['test_duration_seconds'])}")
    print(f"  M5P MAE {format_duration(result.metrics['m5p.mae_seconds'])}, "
          f"POST-MAE {format_duration(result.metrics['m5p.post_mae_seconds'])}")

    print("\nRoot-cause inspection (from the serialized envelope):")
    scores = {
        key.split(".", 1)[1]: value
        for key, value in result.metrics.items()
        if key.startswith("root_cause_score.")
    }
    for resource, score in sorted(scores.items(), key=lambda item: -item[1]):
        print(f"  {resource:10s} score {score:.2f}")
    print(f"  primary implicated resource: {result.metrics['primary_resource']}")
    print(f"  implicates memory AND threads: {result.metrics['implicates_memory_and_threads']}")

    print("\nBelow the API: the learned tree itself (library-level deep dive)")
    from repro.core import AgingPredictor, analyse_root_cause
    from repro.core.feature_selection import select_heap_variables
    from repro.core.features import FeatureCatalog
    from repro.experiments.runner import run_memory_leak_trace, run_thread_leak_trace
    from repro.experiments.scenarios import ExperimentScenarios

    scenarios = ExperimentScenarios.fast(seed=7)
    training = [
        run_memory_leak_trace(scenarios.config, 80, n=15, seed=1),
        run_memory_leak_trace(scenarios.config, 80, n=30, seed=2),
        run_thread_leak_trace(scenarios.config, 80, m=10, t=60, seed=3),
        run_thread_leak_trace(scenarios.config, 80, m=20, t=45, seed=4),
    ]
    catalog = FeatureCatalog()
    heap_names = set(select_heap_variables(catalog))
    feature_names = [name for name in catalog.feature_names if name not in heap_names]
    predictor = AgingPredictor(model="m5p", feature_names=feature_names).fit(training)

    print("First levels of the learned M5P tree:")
    for line in predictor.describe_model().splitlines()[:12]:
        print(f"  {line}")
    report = analyse_root_cause(predictor.model)
    print("Ranked split variables:")
    for variable in report.variables[:5]:
        print(
            f"  {variable.name:45s} depth {variable.shallowest_depth}, "
            f"{variable.split_count} splits, score {variable.score:.2f}"
        )


if __name__ == "__main__":
    main()
