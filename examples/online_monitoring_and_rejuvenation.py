"""On-line monitoring of a production-like server and proactive rejuvenation.

The paper's end goal (Section 6 and its companion technical report) is a
framework that watches a live application server, predicts the time until a
software-aging crash and triggers a clean recovery before it happens.  This
example reproduces that loop on the simulated testbed:

1. train the predictor on historical failure runs;
2. stream a new run's monitoring marks one by one through
   ``OnlineAgingMonitor`` — exactly what an agent on the server would do;
3. raise the rejuvenation alarm when the predicted time to failure falls
   below a safety threshold;
4. compare three operation policies (do nothing, restart every hour,
   restart when the predictor says so) over a long horizon — first on one
   server with the library, then at fleet scale through the unified
   ``repro.api`` entry point (``repro run cluster --scale small``).

Run it with::

    python examples/online_monitoring_and_rejuvenation.py
"""

from repro import api
from repro.core import AgingPredictor, OnlineAgingMonitor, format_duration
from repro.rejuvenation import (
    NoRejuvenationPolicy,
    PredictiveRejuvenationPolicy,
    TimeBasedRejuvenationPolicy,
    simulate_policy,
)
from repro.testbed import MemoryLeakInjector, TestbedConfig, TestbedSimulation

CONFIG = TestbedConfig().scaled_for_fast_runs(4.0)


def aging_run(seed: int, workload_ebs: int = 80, n: int = 30):
    simulation = TestbedSimulation(
        config=CONFIG,
        workload_ebs=workload_ebs,
        injectors=[MemoryLeakInjector(n=n, seed=seed)],
        seed=seed,
    )
    return simulation.run(max_seconds=12 * 3600)


def main() -> None:
    print("Training the predictor on two historical failure runs...")
    predictor = AgingPredictor(model="m5p").fit([aging_run(1), aging_run(2)])

    print("Streaming a live run through the on-line monitor...")
    live_trace = aging_run(11)
    monitor = OnlineAgingMonitor(predictor, alarm_threshold_seconds=600.0, alarm_consecutive=2)
    for sample in live_trace:
        prediction = monitor.observe(sample)
        if prediction.alarm:
            print(
                f"  ALARM at t={prediction.time_seconds:.0f}s: predicted crash in "
                f"{format_duration(prediction.predicted_ttf_seconds)} "
                f"(actual crash at t={live_trace.crash_time_seconds:.0f}s)"
            )
            break
    if monitor.alarm_time is None:
        print("  the monitor never raised its alarm on this run")
    else:
        margin = live_trace.crash_time_seconds - monitor.alarm_time
        print(f"  the alarm fired {format_duration(margin)} before the actual crash")

    print("\nComparing rejuvenation policies over a 12-hour horizon (one server)...")
    horizon = 12 * 3600.0

    def factory(epoch: int):
        return aging_run(100 + epoch)

    policies = [
        NoRejuvenationPolicy(),
        TimeBasedRejuvenationPolicy(interval_seconds=3600.0),
        PredictiveRejuvenationPolicy(predictor, threshold_seconds=600.0, consecutive=2),
    ]
    for policy in policies:
        outcome = simulate_policy(policy, factory, horizon_seconds=horizon)
        print(f"  {outcome.summary()}")

    print("\nThe same comparison at fleet scale, through the unified API")
    print("(equivalently: repro run cluster --scale small --out results/cluster.json)...")
    fleet = api.run("cluster", scale="small")
    for policy in ("no_rejuvenation", "time_based", "rolling_predictive"):
        print(
            f"  {policy:20s} availability {fleet.metrics[f'{policy}.availability']:.4f}, "
            f"full outage {fleet.metrics[f'{policy}.full_outage_seconds']:.0f}s"
        )
    print(f"  rolling predictive wins: {fleet.metrics['rolling_wins']}")


if __name__ == "__main__":
    main()
