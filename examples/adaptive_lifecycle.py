"""Adaptive model lifecycle: surviving a fault the training set never saw.

The paper trains its TTF predictor off-line and deploys it unchanged.  This
example closes the loop the paper leaves open: the deployed model is a
*champion* that can be dethroned when the world drifts away from its
training data.

The scenario: a server ages under a plain memory leak -- exactly what the
champion was trained on -- and mid-run the fault morphs into a thread leak
the training set never contained.  The static champion keeps explaining the
world through memory speeds and forecasts a long healthy future while the
thread pool marches toward exhaustion.  The managed monitor
(``ManagedOnlineMonitor``) notices the thread gauge leave the champion's
training domain, declares drift, retrains challengers on the live window
with Equation (1) pseudo-labels, and promotes the ones that beat the
incumbent on a held-out slice of the freshest marks.

Everything is seeded, so the drift marks, gate verdicts and error figures
below reproduce byte-for-byte (and identically on both simulation engines).

Run it with::

    python examples/adaptive_lifecycle.py
"""

from repro import api
from repro.core import format_duration
from repro.experiments.lifecycle import run_lifecycle_experiment
from repro.experiments.scenarios import ExperimentScenarios


def main() -> None:
    scenarios = ExperimentScenarios.fast()
    print(
        "Streaming the morphing run (memory leak, then a thread leak at "
        f"t={scenarios.morph_time_seconds:.0f}s) through a static and a managed monitor..."
    )
    result = run_lifecycle_experiment(scenarios, engine="event")

    print(f"\n{result.summary()}\n")
    print(
        f"The managed monitor retrained through {result.generations} generations and "
        f"recovered {format_duration(result.post_morph_improvement)} of post-morph "
        f"forecast error over the static champion."
    )
    print(f"lifecycle wins: {result.lifecycle_wins()}")

    print("\nThe same experiment through the unified API")
    print("(equivalently: repro run lifecycle --scale small --out results/lifecycle.json)...")
    run = api.run("lifecycle", scale="small")
    for key in (
        "static.post_morph_mae_seconds",
        "managed.post_morph_mae_seconds",
        "num_drifts",
        "num_promotions",
        "generations",
    ):
        print(f"  {key:32s} {run.metrics[key]}")


if __name__ == "__main__":
    main()
