"""Operate a million-browser, thousand-node fleet on the fluid engine tier.

The exact engines simulate every emulated browser and every request; that
fidelity caps them at fleets of a few hundred nodes.  The fluid tier keeps
the same OS/JVM aging physics and the same policy stack (M5P forecasts,
aging-aware routing, coordinated rolling restarts) but settles each node's
traffic as a seeded Poisson aggregate over flat numpy arrays — so a fleet
three orders of magnitude larger finishes in seconds, deterministically.

The script runs the same one-hour scenario twice:

1. no rejuvenation — the thousand-node fleet ages until nodes crash;
2. rolling predictive — every node streams marks through the fitted M5P
   predictor and alarmed nodes are drained and restarted under a
   concurrent-restart budget.

Pick the fleet size with::

    python examples/fluid_fleet_scale.py [num_nodes] [total_ebs]

At fast scales the fluid tier is validated against the exact engines in
``tests/cluster/test_fluid_validation.py``; through the unified API the
tier is one parameter::

    repro run cluster --scale small -p engine=fluid
"""

import sys
import time

from repro.cluster.coordinator import NoClusterRejuvenation, RollingPredictiveRejuvenation
from repro.cluster.fluid import FluidClusterEngine
from repro.cluster.routing import AgingAwareRouting
from repro.experiments.cluster import train_cluster_predictor
from repro.experiments.scenarios import ClusterScenario

HORIZON_SECONDS = 3600.0
MAX_CONCURRENT_RESTARTS = 200


def build_fleet(scenario, num_nodes, total_ebs, *, coordinator, predictor=None):
    return FluidClusterEngine(
        num_nodes=num_nodes,
        config=scenario.config,
        total_ebs=total_ebs,
        injector_factory=scenario.injector_factory,
        routing_policy=AgingAwareRouting(ttf_comfort_seconds=scenario.ttf_comfort_seconds),
        coordinator=coordinator,
        predictor=predictor,
        alarm_threshold_seconds=scenario.alarm_threshold_seconds,
        alarm_consecutive=scenario.alarm_consecutive,
        drain_seconds=scenario.drain_seconds,
        seed=scenario.cluster_seed,
    )


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    total_ebs = int(sys.argv[2]) if len(sys.argv) > 2 else 1_000_000
    scenario = ClusterScenario.paper_scale()

    print(
        f"Fluid tier: {num_nodes} nodes x {total_ebs} emulated browsers x "
        f"{HORIZON_SECONDS:.0f} simulated seconds\n"
    )

    started = time.perf_counter()
    predictor = train_cluster_predictor(scenario)
    print(f"M5P predictor trained on exact-engine runs in {time.perf_counter() - started:.1f}s\n")

    outcomes = {}
    for name, coordinator, fitted in (
        ("no_rejuvenation", NoClusterRejuvenation(), None),
        (
            "rolling_predictive",
            RollingPredictiveRejuvenation(
                max_concurrent_restarts=MAX_CONCURRENT_RESTARTS,
                min_active_fraction=scenario.min_active_fraction,
            ),
            predictor,
        ),
    ):
        fleet = build_fleet(scenario, num_nodes, total_ebs, coordinator=coordinator, predictor=fitted)
        started = time.perf_counter()
        outcomes[name] = (fleet.run(HORIZON_SECONDS), time.perf_counter() - started)

    header = f"{'strategy':22s}{'availability':>14s}{'crashes':>9s}{'restarts':>10s}{'wall clock':>12s}"
    print(header)
    print("-" * len(header))
    for name, (outcome, seconds) in outcomes.items():
        print(
            f"{name:22s}{outcome.availability:>14.4f}{outcome.crashes:>9d}"
            f"{outcome.rejuvenations:>10d}{seconds:>11.1f}s"
        )

    baseline, _ = outcomes["no_rejuvenation"]
    predictive, predictive_seconds = outcomes["rolling_predictive"]
    print(
        f"\nPredictive rejuvenation lifted fleet availability from "
        f"{baseline.availability:.4f} to {predictive.availability:.4f} "
        f"({baseline.crashes} crashes avoided down to {predictive.crashes}); "
        f"the one-hour, {num_nodes}-node run settled in {predictive_seconds:.1f}s of wall clock."
    )
    print(
        "Re-running with the same seed reproduces these numbers byte-for-byte — "
        "the fluid tier is deterministic by construction."
    )


if __name__ == "__main__":
    main()
