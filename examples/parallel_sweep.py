"""Parallel sweep with a content-addressed cache: a paper grid in one call.

Every registered run is a pure seeded function ``(name, resolved params,
version) -> byte-stable RunResult JSON``, which buys the whole
orchestration layer for free:

* ``expand_sweep`` turns range/list expressions into a deterministic grid
  of run points, each addressed by the content hash of its identity;
* ``run_points`` dispatches cache-missing points over a process pool
  (``workers=1`` is the sequential path — artifact bytes are identical
  either way);
* ``ResultStore`` serves points whose envelope already exists, so rerunning
  a sweep costs one JSON parse per finished point instead of a simulation;
* ``collect_results`` folds the result directory into one summary.

The same flow from the command line::

    repro sweep figure2 --seed 1..8 --scale small --workers 4 --out-dir results/f2
    repro sweep figure2 --seed 1..8 --scale small --workers 4 --out-dir results/f2  # all cached
    repro collect results/f2 --out results/f2-summary.json

Run this script with::

    python examples/parallel_sweep.py
"""

import time

from repro import api


def run_sweep(points, store, workers):
    started = time.perf_counter()
    outcomes = api.run_points(points, store, workers=workers)
    elapsed = time.perf_counter() - started
    ran = sum(1 for outcome in outcomes if outcome.status == "ran")
    cached = sum(1 for outcome in outcomes if outcome.status == "cached")
    print(f"  {len(outcomes)} point(s): {ran} ran, {cached} cached in {elapsed:.2f}s")
    return elapsed


def main() -> None:
    points = api.expand_sweep("figure2", {"seed": "1..8", "scale": "small"})
    print(f"Swept grid ({len(points)} points):")
    for point in points:
        print(f"  {point.label} -> {point.filename}")

    store = api.ResultStore("results/figure2-sweep")
    print("\nCold sweep (process pool over all cores):")
    cold = run_sweep(points, store, workers=None)

    print("Warm rerun (every point served from the content-addressed store):")
    warm = run_sweep(points, store, workers=None)
    print(f"  cache speedup: {cold / max(warm, 1e-9):.0f}x")

    summary = api.collect_results(store.root)
    stats = summary["by_name"]["figure2"]
    phases = stats["metrics"]["num_phases"]
    print(f"\nCollected {summary['num_runs']} run(s) from {store.root}:")
    print(f"  figure2 phases per run: min {phases['min']:.0f}, "
          f"mean {phases['mean']:.1f}, max {phases['max']:.0f}")
    print("  (full summary: api.summary_json(summary), or `repro collect`)")


if __name__ == "__main__":
    main()
