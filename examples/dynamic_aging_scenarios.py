"""The paper's hard scenarios: dynamic rates and periodic masking patterns.

This example reproduces, at demo scale, the two scenarios the paper uses to
argue that software-aging prediction needs more than a linear trend:

* **Dynamic aging** (Experiment 4.2): the leak rate changes every few
  minutes -- no injection, then ``N = 30``, then ``N = 15``, then ``N = 75``
  until the crash.  The predictor must re-estimate the time to failure as
  the regime changes.
* **Aging hidden in a periodic pattern** (Experiment 4.3): memory is
  acquired and released in cycles, but a little is retained every cycle, so
  the application slowly ages towards a crash that a glance at the OS-level
  memory graph would miss.

Run it with::

    python examples/dynamic_aging_scenarios.py
"""

from repro.core import AgingPredictor, format_duration
from repro.experiments import run_experiment_42, run_experiment_43
from repro.experiments.scenarios import ExperimentScenarios


def describe_adaptation(result) -> None:
    """Print how the prediction follows the rate changes of Experiment 4.2."""
    print("  phase starts (s):", ", ".join(f"{start:.0f}" for start in result.phase_starts))
    print(f"  run crashed after {format_duration(result.test_duration_seconds)}")
    print(f"  M5P       : {result.m5p_evaluation.summary()}")
    print(f"  Linear Reg: {result.linear_evaluation.summary()}")
    print(f"  prediction drops when injection starts: {result.adapts_to_injection_start()}")
    times = result.times
    for fraction in (0.1, 0.35, 0.6, 0.85):
        index = int(len(times) * fraction)
        print(
            f"    t={times[index]:7.0f}s  true {format_duration(result.true_ttf[index]):>15s}"
            f"  predicted {format_duration(result.predicted_ttf[index]):>15s}"
        )


def main() -> None:
    scenarios = ExperimentScenarios.fast(seed=42)

    print("Scenario 1: dynamic software aging (Experiment 4.2)")
    result42 = run_experiment_42(scenarios)
    describe_adaptation(result42)

    print("\nScenario 2: aging hidden within a periodic pattern (Experiment 4.3)")
    result43 = run_experiment_43(scenarios)
    print(f"  run crashed after {format_duration(result43.test_duration_seconds)}")
    print("  with the expert heap-variable selection (Table 4):")
    print(f"    M5P       : {result43.m5p_selected.summary()}")
    print(f"    Linear Reg: {result43.linear_selected.summary()}")
    print("  with the full variable set (what motivated the selection):")
    print(f"    M5P       : {result43.m5p_full.summary()}")
    print(f"  selected M5P model size: {result43.selected_m5p_leaves} leaves")

    print("\nScenario 3: the prediction board extension (consensus of models)")
    from repro.core import PredictionBoard
    from repro.experiments.runner import run_memory_leak_trace, run_no_injection_trace

    config = scenarios.config
    training = [
        run_no_injection_trace(config, 100, duration_seconds=scenarios.healthy_run_seconds, seed=1),
        run_memory_leak_trace(config, 100, n=15, seed=2),
        run_memory_leak_trace(config, 100, n=30, seed=3),
    ]
    test_trace = run_memory_leak_trace(config, 100, n=20, seed=9)
    board = PredictionBoard(
        [AgingPredictor(model="m5p"), AgingPredictor(model="linear"), AgingPredictor(model="tree")]
    ).fit(training)
    print(f"  consensus : {board.evaluate_trace(test_trace).summary()}")
    for member, evaluation in zip(board.members, board.evaluate_members(test_trace)):
        print(f"  {member.model_name:9s} : {evaluation.summary()}")


if __name__ == "__main__":
    main()
