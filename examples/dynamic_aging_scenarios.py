"""The paper's hard scenarios: dynamic rates and periodic masking patterns.

This example drives, through the unified ``repro.api`` entry point, the two
scenarios the paper uses to argue that software-aging prediction needs more
than a linear trend:

* **Dynamic aging** (``exp42``): the leak rate changes every few minutes —
  no injection, then ``N = 30``, then ``N = 15``, then ``N = 75`` until the
  crash.  The predictor must re-estimate the time to failure as the regime
  changes.
* **Aging hidden in a periodic pattern** (``exp43``): memory is acquired
  and released in cycles, but a little is retained every cycle, so the
  application slowly ages towards a crash that a glance at the OS-level
  memory graph would miss.

Both come back as serializable ``RunResult`` envelopes; the equivalent shell
commands are::

    repro run exp42 --scale small --seed 42
    repro run exp43 --scale small --seed 42

Run it with::

    python examples/dynamic_aging_scenarios.py
"""

from repro import api
from repro.core import format_duration


def describe_adaptation(result: api.RunResult) -> None:
    """Print how the prediction follows the rate changes of Experiment 4.2."""
    starts = result.series["phase_starts_seconds"]
    print("  phase starts (s):", ", ".join(f"{start:.0f}" for start in starts))
    print(f"  run crashed after {format_duration(result.metrics['test_duration_seconds'])}")
    print(
        f"  M5P       : MAE {format_duration(result.metrics['m5p.mae_seconds'])}, "
        f"S-MAE {format_duration(result.metrics['m5p.s_mae_seconds'])}, "
        f"POST-MAE {format_duration(result.metrics['m5p.post_mae_seconds'])}"
    )
    print(
        f"  Linear Reg: MAE {format_duration(result.metrics['linear.mae_seconds'])}, "
        f"S-MAE {format_duration(result.metrics['linear.s_mae_seconds'])}, "
        f"POST-MAE {format_duration(result.metrics['linear.post_mae_seconds'])}"
    )
    print(f"  prediction drops when injection starts: {result.metrics['adapts_to_injection_start']}")
    times = result.series["time_seconds"]
    true_ttf = result.series["true_ttf_seconds"]
    predicted = result.series["predicted_ttf_seconds"]
    for fraction in (0.1, 0.35, 0.6, 0.85):
        index = int(len(times) * fraction)
        print(
            f"    t={times[index]:7.0f}s  true {format_duration(true_ttf[index]):>15s}"
            f"  predicted {format_duration(predicted[index]):>15s}"
        )


def main() -> None:
    print("Scenario 1: dynamic software aging (Experiment 4.2)")
    result42 = api.run("exp42", scale="small", seed=42)
    describe_adaptation(result42)

    print("\nScenario 2: aging hidden within a periodic pattern (Experiment 4.3)")
    result43 = api.run("exp43", scale="small", seed=42)
    print(f"  run crashed after {format_duration(result43.metrics['test_duration_seconds'])}")
    print("  with the expert heap-variable selection (Table 4):")
    print(f"    M5P       : MAE {format_duration(result43.metrics['m5p_selected.mae_seconds'])}")
    print(f"    Linear Reg: MAE {format_duration(result43.metrics['linear_selected.mae_seconds'])}")
    print("  with the full variable set (what motivated the selection):")
    print(f"    M5P       : MAE {format_duration(result43.metrics['m5p_full.mae_seconds'])}")
    print(f"  selection helps M5P: {result43.metrics['selection_helps_m5p']}")
    print(f"  selected M5P model size: {result43.metrics['selected_m5p_leaves']} leaves")

    print("\nScenario 3: the prediction board extension (consensus of models)")
    from repro.core import AgingPredictor, PredictionBoard
    from repro.experiments.runner import run_memory_leak_trace, run_no_injection_trace
    from repro.experiments.scenarios import ExperimentScenarios

    scenarios = ExperimentScenarios.fast(seed=42)
    config = scenarios.config
    training = [
        run_no_injection_trace(config, 100, duration_seconds=scenarios.healthy_run_seconds, seed=1),
        run_memory_leak_trace(config, 100, n=15, seed=2),
        run_memory_leak_trace(config, 100, n=30, seed=3),
    ]
    test_trace = run_memory_leak_trace(config, 100, n=20, seed=9)
    board = PredictionBoard(
        [AgingPredictor(model="m5p"), AgingPredictor(model="linear"), AgingPredictor(model="tree")]
    ).fit(training)
    print(f"  consensus : {board.evaluate_trace(test_trace).summary()}")
    for member, evaluation in zip(board.members, board.evaluate_members(test_trace)):
        print(f"  {member.model_name:9s} : {evaluation.summary()}")


if __name__ == "__main__":
    main()
