"""Benchmarks regenerating the two motivating figures (Figures 1 and 2)."""

import numpy as np

from repro.core.evaluation import format_duration
from repro.experiments.figures import figure1_series, figure2_series

from bench_util import print_comparison


def test_figure1_nonlinear_memory(benchmark, paper_scenarios):
    """Figure 1 -- progressive memory consumption with heap-resize flat zones."""
    series = benchmark.pedantic(figure1_series, args=(paper_scenarios,), iterations=1, rounds=1)
    assert series.has_flat_zones()
    assert len(series.old_resize_times) >= 1
    assert series.extra_life_seconds() > 0
    print_comparison(
        "Figure 1: nonlinear memory behaviour under a constant-rate leak",
        [
            ("Old-zone resizes during the run", "3 visible (2150s, 4350s, 5150s)", f"{len(series.old_resize_times)} at " + ", ".join(f"{t:.0f}s" for t in series.old_resize_times)),
            ("Extra life vs naive extrapolation", "about 16 minutes", format_duration(max(series.extra_life_seconds(), 0.0))),
            ("Run length until crash", "~5500 s", f"{series.crash_time_seconds:.0f} s"),
            ("OS-level signal has flat zones", "yes", "yes" if series.has_flat_zones() else "no"),
        ],
    )


def test_figure2_os_vs_jvm_view(benchmark, paper_scenarios):
    """Figure 2 -- OS-level versus JVM-level view of a periodic memory pattern."""
    series = benchmark.pedantic(figure2_series, args=(paper_scenarios, 5), iterations=1, rounds=1)
    assert series.os_view_is_flat_after_warmup()
    assert series.jvm_view_oscillates()
    jvm_swing = float(series.jvm_heap_used_mb.max() - series.jvm_heap_used_mb[len(series.jvm_heap_used_mb) // 3 :].min())
    os_swing_after_warmup = float(
        series.os_memory_mb[len(series.os_memory_mb) // 3 :].max()
        - series.os_memory_mb[len(series.os_memory_mb) // 3 :].min()
    )
    print_comparison(
        "Figure 2: the same resource from the OS and the JVM perspective",
        [
            ("JVM view (Young+Old) oscillates", "waves every 20-minute phase", f"swing {jvm_swing:.0f} MB"),
            ("OS view after warm-up", "constant (Linux keeps freed pages)", f"swing {os_swing_after_warmup:.0f} MB"),
            ("Experiment length", "5 hours", f"{series.time_seconds[-1] / 3600.0:.1f} hours"),
            ("Net aging", "none (full release)", "none (run did not crash)"),
        ],
    )
    assert np.all(np.diff(series.os_memory_mb) >= -1e-9)
