"""Benchmark of the rejuvenation-policy extension (paper Section 1 motivation)."""

import pytest

from repro.core.predictor import AgingPredictor
from repro.experiments.runner import run_memory_leak_trace
from repro.rejuvenation.policies import (
    NoRejuvenationPolicy,
    PredictiveRejuvenationPolicy,
    TimeBasedRejuvenationPolicy,
)
from repro.rejuvenation.simulator import simulate_policy

from bench_util import BENCH_SEED, print_comparison


@pytest.fixture(scope="module")
def aging_environment(paper_scenarios):
    """Training traces, a fitted predictor and an epoch factory (paper scale)."""
    config = paper_scenarios.config
    training = [
        run_memory_leak_trace(config, workload_ebs=100, n=15, seed=BENCH_SEED + 900),
        run_memory_leak_trace(config, workload_ebs=100, n=30, seed=BENCH_SEED + 901),
    ]
    predictor = AgingPredictor(model="m5p").fit(training)
    cache: dict[int, object] = {}

    def factory(epoch: int):
        if epoch not in cache:
            cache[epoch] = run_memory_leak_trace(config, workload_ebs=100, n=30, seed=BENCH_SEED + 950 + epoch)
        return cache[epoch]

    return predictor, factory


def test_rejuvenation_policy_comparison(benchmark, aging_environment):
    """Availability of no / time-based / predictive rejuvenation on aging runs."""
    predictor, factory = aging_environment
    horizon = 12 * 3600.0

    def compare():
        baseline = simulate_policy(NoRejuvenationPolicy(), factory, horizon_seconds=horizon)
        time_based = simulate_policy(TimeBasedRejuvenationPolicy(interval_seconds=3600.0), factory, horizon_seconds=horizon)
        predictive = simulate_policy(
            PredictiveRejuvenationPolicy(predictor, threshold_seconds=900.0, consecutive=2),
            factory,
            horizon_seconds=horizon,
        )
        return baseline, time_based, predictive

    baseline, time_based, predictive = benchmark.pedantic(compare, iterations=1, rounds=1)
    rows = [
        ("No rejuvenation: availability", "(baseline, crashes only)", f"{baseline.availability:.4f} ({baseline.crashes} crashes)"),
        ("Time-based hourly: availability", "widely used in practice", f"{time_based.availability:.4f} ({time_based.rejuvenations} restarts, {time_based.crashes} crashes)"),
        ("Predictive: availability", "goal of the paper's predictor", f"{predictive.availability:.4f} ({predictive.rejuvenations} restarts, {predictive.crashes} crashes)"),
        ("Predictive unplanned downtime share", "should approach 0", f"{predictive.unplanned_downtime_fraction:.2f}"),
    ]
    print_comparison("Rejuvenation extension: policy comparison over a 12-hour horizon", rows)
    assert predictive.availability > baseline.availability
    assert predictive.crashes <= baseline.crashes
