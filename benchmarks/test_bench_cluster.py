"""Benchmarks of the clustered deployment.

Two families:

* ``test_cluster_rolling_rejuvenation`` regenerates the three-strategy fleet
  comparison at paper scale, parametrized over the scenario kind (memory,
  threads, two-resource) so the BENCH json distinguishes the runs; node
  count and fleet workload are recorded as ``extra_info``.
* ``test_cluster_event_engine_speedup`` pits the event-driven engine against
  the tick-everything per-second reference on a wide paper-scale fleet (the
  regime the event scheduler exists for: many 1 GB-heap nodes, marks every
  15 s, light per-node traffic) and asserts the >=5x wall-clock speedup with
  identical seeded outcomes.
"""

import time

import pytest

from repro.cluster.engine import ClusterEngine, PerSecondClusterEngine
from repro.experiments.cluster import run_cluster_experiment
from repro.experiments.scenarios import CLUSTER_SCENARIO_KINDS, ClusterScenario

from bench_util import BENCH_SEED, print_comparison

#: The wide paper-scale fleet of the engine speedup benchmark: 384 nodes on
#: the paper's 1 GB-heap configuration under the two-resource injectors,
#: carrying a light fleet-level workload for 30 simulated minutes -- the
#: regime the tick-everything loop pays for every node every second while
#: the event scheduler only touches nodes at marks, injector firings and
#: request arrivals.
_SPEEDUP_NODES = 384
_SPEEDUP_EBS = 8
_SPEEDUP_HORIZON_S = 1800.0
_SPEEDUP_PAIRS = 3


@pytest.fixture(scope="session", params=CLUSTER_SCENARIO_KINDS)
def cluster_scenario(request) -> ClusterScenario:
    """The paper-scale fleet of one scenario kind (3 nodes, 1 GB heaps)."""
    return ClusterScenario.paper_scale(kind=request.param)


def test_cluster_rolling_rejuvenation(benchmark, cluster_scenario):
    """Regenerate the three-strategy fleet comparison at paper scale."""
    benchmark.extra_info["scenario_kind"] = cluster_scenario.kind
    benchmark.extra_info["num_nodes"] = cluster_scenario.num_nodes
    benchmark.extra_info["total_ebs"] = cluster_scenario.total_ebs
    result = benchmark.pedantic(
        run_cluster_experiment, kwargs={"scenario": cluster_scenario}, iterations=1, rounds=1
    )
    rows = [("scenario kind / fleet", "-", f"{cluster_scenario.kind} / {cluster_scenario.num_nodes} nodes")]
    for name, outcome in result.outcomes().items():
        rows.append((f"{name} availability", "-", f"{outcome.availability:.4f}"))
        rows.append((f"{name} full outage", "-", f"{outcome.full_outage_seconds:.0f} s"))
        rows.append((f"{name} crashes / restarts", "-", f"{outcome.crashes} / {outcome.rejuvenations}"))
    rows.append(("time-based interval", "-", f"{result.time_based_interval_seconds:.0f} s"))
    rows.append(("rolling wins (higher avail., no outage)", "expected", str(result.rolling_wins())))
    print_comparison(
        f"Cluster ({cluster_scenario.kind}): coordinated rolling predictive rejuvenation", rows
    )

    assert result.rolling_wins()


def _build_speedup_fleet(engine_class):
    scenario = ClusterScenario.paper_scale(kind="two_resource")
    return engine_class(
        num_nodes=_SPEEDUP_NODES,
        config=scenario.config,
        total_ebs=_SPEEDUP_EBS,
        injector_factory=scenario.injector_factory,
        seed=BENCH_SEED,
    )


def test_cluster_event_engine_speedup(benchmark):
    """Event-driven engine >=5x faster than per-second, identical outcomes.

    Reference and event-driven runs are interleaved in pairs and the median
    per-pair ratio is asserted, so transient machine noise (which hits both
    engines of a pair alike) cannot fake or mask the speedup.
    """
    ratios = []
    reference_times = []
    event_times = []
    for _ in range(_SPEEDUP_PAIRS):
        started = time.perf_counter()
        reference_outcome = _build_speedup_fleet(PerSecondClusterEngine).run(_SPEEDUP_HORIZON_S)
        reference_seconds = time.perf_counter() - started
        started = time.perf_counter()
        event_outcome = _build_speedup_fleet(ClusterEngine).run(_SPEEDUP_HORIZON_S)
        event_seconds = time.perf_counter() - started
        assert event_outcome == reference_outcome
        reference_times.append(reference_seconds)
        event_times.append(event_seconds)
        ratios.append(reference_seconds / event_seconds)

    # One extra event-engine round through the benchmark fixture so the
    # BENCH json records the engine's own timing distribution.
    benchmark.pedantic(
        lambda: _build_speedup_fleet(ClusterEngine).run(_SPEEDUP_HORIZON_S),
        iterations=1,
        rounds=1,
    )

    speedup = sorted(ratios)[len(ratios) // 2]
    benchmark.extra_info["scenario_kind"] = "two_resource"
    benchmark.extra_info["num_nodes"] = _SPEEDUP_NODES
    benchmark.extra_info["total_ebs"] = _SPEEDUP_EBS
    benchmark.extra_info["per_second_engine_s"] = round(min(reference_times), 3)
    benchmark.extra_info["event_engine_s"] = round(min(event_times), 3)
    benchmark.extra_info["speedup_x"] = round(speedup, 2)
    print_comparison(
        "Cluster: event-driven engine vs per-second reference",
        [
            ("fleet", "-", f"{_SPEEDUP_NODES} nodes, {_SPEEDUP_EBS} EBs, {_SPEEDUP_HORIZON_S:.0f}s"),
            ("per-second engine (best pair)", "-", f"{min(reference_times):.2f} s"),
            ("event-driven engine (best pair)", "-", f"{min(event_times):.2f} s"),
            ("speedup (median of pairs)", ">= 5x", f"{speedup:.1f}x"),
            ("per-pair ratios", "-", ", ".join(f"{r:.1f}x" for r in ratios)),
        ],
    )

    assert speedup >= 5.0
