"""Benchmarks of the clustered deployment.

Three families:

* ``test_cluster_rolling_rejuvenation`` regenerates the three-strategy fleet
  comparison at paper scale, parametrized over the scenario kind (memory,
  threads, two-resource) so the BENCH json distinguishes the runs; node
  count and fleet workload are recorded as ``extra_info``.
* ``test_cluster_event_engine_speedup`` pits the event-driven engine against
  the tick-everything per-second reference on a wide paper-scale fleet (the
  regime the event scheduler exists for: many 1 GB-heap nodes, marks every
  15 s, light per-node traffic) and asserts the >=5x wall-clock speedup with
  identical seeded outcomes.
* ``test_cluster_fluid_scale`` drives the approximate fluid tier through the
  scale envelope the exact engines cannot reach -- one million emulated
  browsers across one thousand nodes under rolling predictive rejuvenation
  with a paper-trained M5P monitor -- and asserts the one-hour scenario
  completes within the wall-clock bound with byte-identical seeded repeats.

Besides the pytest-benchmark json, every family merges its measurements
into the machine-readable ``benchmarks/BENCH_cluster.json`` (one section
per family, written incrementally so a partial run updates only its own
sections) -- the perf trajectory future PRs inherit.
"""

import json
import time
from pathlib import Path

import pytest

from repro.cluster.engine import ClusterEngine, PerSecondClusterEngine
from repro.cluster.fluid import FluidClusterEngine
from repro.cluster.coordinator import RollingPredictiveRejuvenation
from repro.cluster.routing import AgingAwareRouting
from repro.experiments.cluster import run_cluster_experiment, train_cluster_predictor
from repro.experiments.scenarios import CLUSTER_SCENARIO_KINDS, ClusterScenario

from bench_util import BENCH_SEED, print_comparison

_BENCH_JSON = Path(__file__).resolve().parent / "BENCH_cluster.json"


def _record(section: str, measurements: dict) -> None:
    """Merge one family's measurements into ``BENCH_cluster.json``."""
    existing: dict = {}
    if _BENCH_JSON.exists():
        existing = json.loads(_BENCH_JSON.read_text())
    existing[section] = measurements
    _BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

#: The wide paper-scale fleet of the engine speedup benchmark: 384 nodes on
#: the paper's 1 GB-heap configuration under the two-resource injectors,
#: carrying a light fleet-level workload for 30 simulated minutes -- the
#: regime the tick-everything loop pays for every node every second while
#: the event scheduler only touches nodes at marks, injector firings and
#: request arrivals.
_SPEEDUP_NODES = 384
_SPEEDUP_EBS = 8
_SPEEDUP_HORIZON_S = 1800.0
_SPEEDUP_PAIRS = 3


@pytest.fixture(scope="session", params=CLUSTER_SCENARIO_KINDS)
def cluster_scenario(request) -> ClusterScenario:
    """The paper-scale fleet of one scenario kind (3 nodes, 1 GB heaps)."""
    return ClusterScenario.paper_scale(kind=request.param)


def test_cluster_rolling_rejuvenation(benchmark, cluster_scenario):
    """Regenerate the three-strategy fleet comparison at paper scale."""
    benchmark.extra_info["scenario_kind"] = cluster_scenario.kind
    benchmark.extra_info["num_nodes"] = cluster_scenario.num_nodes
    benchmark.extra_info["total_ebs"] = cluster_scenario.total_ebs
    result = benchmark.pedantic(
        run_cluster_experiment, kwargs={"scenario": cluster_scenario}, iterations=1, rounds=1
    )
    rows = [("scenario kind / fleet", "-", f"{cluster_scenario.kind} / {cluster_scenario.num_nodes} nodes")]
    for name, outcome in result.outcomes().items():
        rows.append((f"{name} availability", "-", f"{outcome.availability:.4f}"))
        rows.append((f"{name} full outage", "-", f"{outcome.full_outage_seconds:.0f} s"))
        rows.append((f"{name} crashes / restarts", "-", f"{outcome.crashes} / {outcome.rejuvenations}"))
    rows.append(("time-based interval", "-", f"{result.time_based_interval_seconds:.0f} s"))
    rows.append(("rolling wins (higher avail., no outage)", "expected", str(result.rolling_wins())))
    print_comparison(
        f"Cluster ({cluster_scenario.kind}): coordinated rolling predictive rejuvenation", rows
    )

    _record(
        f"rolling_rejuvenation.{cluster_scenario.kind}",
        {
            "num_nodes": cluster_scenario.num_nodes,
            "total_ebs": cluster_scenario.total_ebs,
            "rolling_availability": round(result.rolling_predictive.availability, 6),
            "time_based_availability": round(result.time_based.availability, 6),
            "no_rejuvenation_availability": round(result.no_rejuvenation.availability, 6),
            "rolling_wins": result.rolling_wins(),
        },
    )
    assert result.rolling_wins()


def _build_speedup_fleet(engine_class):
    scenario = ClusterScenario.paper_scale(kind="two_resource")
    return engine_class(
        num_nodes=_SPEEDUP_NODES,
        config=scenario.config,
        total_ebs=_SPEEDUP_EBS,
        injector_factory=scenario.injector_factory,
        seed=BENCH_SEED,
    )


def test_cluster_event_engine_speedup(benchmark):
    """Event-driven engine >=5x faster than per-second, identical outcomes.

    Reference and event-driven runs are interleaved in pairs and the median
    per-pair ratio is asserted, so transient machine noise (which hits both
    engines of a pair alike) cannot fake or mask the speedup.
    """
    ratios = []
    reference_times = []
    event_times = []
    for _ in range(_SPEEDUP_PAIRS):
        started = time.perf_counter()
        reference_outcome = _build_speedup_fleet(PerSecondClusterEngine).run(_SPEEDUP_HORIZON_S)
        reference_seconds = time.perf_counter() - started
        started = time.perf_counter()
        event_outcome = _build_speedup_fleet(ClusterEngine).run(_SPEEDUP_HORIZON_S)
        event_seconds = time.perf_counter() - started
        assert event_outcome == reference_outcome
        reference_times.append(reference_seconds)
        event_times.append(event_seconds)
        ratios.append(reference_seconds / event_seconds)

    # One extra event-engine round through the benchmark fixture so the
    # BENCH json records the engine's own timing distribution.
    benchmark.pedantic(
        lambda: _build_speedup_fleet(ClusterEngine).run(_SPEEDUP_HORIZON_S),
        iterations=1,
        rounds=1,
    )

    speedup = sorted(ratios)[len(ratios) // 2]
    measurements = {
        "scenario_kind": "two_resource",
        "num_nodes": _SPEEDUP_NODES,
        "total_ebs": _SPEEDUP_EBS,
        "horizon_s": _SPEEDUP_HORIZON_S,
        "per_second_engine_s": round(min(reference_times), 3),
        "event_engine_s": round(min(event_times), 3),
        "speedup_x": round(speedup, 2),
    }
    benchmark.extra_info.update(measurements)
    _record("event_engine_speedup", measurements)
    print_comparison(
        "Cluster: event-driven engine vs per-second reference",
        [
            ("fleet", "-", f"{_SPEEDUP_NODES} nodes, {_SPEEDUP_EBS} EBs, {_SPEEDUP_HORIZON_S:.0f}s"),
            ("per-second engine (best pair)", "-", f"{min(reference_times):.2f} s"),
            ("event-driven engine (best pair)", "-", f"{min(event_times):.2f} s"),
            ("speedup (median of pairs)", ">= 5x", f"{speedup:.1f}x"),
            ("per-pair ratios", "-", ", ".join(f"{r:.1f}x" for r in ratios)),
        ],
    )

    assert speedup >= 5.0


# ---------------------------------------------------------------------------
# fluid tier at scale: one million browsers, one thousand nodes, one hour
# ---------------------------------------------------------------------------

_FLUID_NODES = 1000
_FLUID_EBS = 1_000_000
_FLUID_HORIZON_S = 3600.0
_FLUID_RUNS = 3
_FLUID_BOUND_S = 300.0
#: A thousand-node fleet needs a real concurrent-restart budget or the
#: rolling coordinator becomes the bottleneck the tier exists to remove.
_FLUID_MAX_CONCURRENT = 200


def _build_fluid_fleet(scenario, predictor):
    return FluidClusterEngine(
        num_nodes=_FLUID_NODES,
        config=scenario.config,
        total_ebs=_FLUID_EBS,
        injector_factory=scenario.injector_factory,
        routing_policy=AgingAwareRouting(ttf_comfort_seconds=scenario.ttf_comfort_seconds),
        coordinator=RollingPredictiveRejuvenation(
            max_concurrent_restarts=_FLUID_MAX_CONCURRENT,
            min_active_fraction=scenario.min_active_fraction,
        ),
        predictor=predictor,
        alarm_threshold_seconds=scenario.alarm_threshold_seconds,
        alarm_consecutive=scenario.alarm_consecutive,
        drain_seconds=scenario.drain_seconds,
        seed=BENCH_SEED,
    )


def test_cluster_fluid_scale(benchmark):
    """Fluid tier: 1M EBs x 1000 nodes x 1h predictive run under the bound.

    The acceptance envelope of the tier: the full predictive stack (M5P
    forecasts at every mark, aging-aware shedding, rolling coordination)
    over a fleet three orders of magnitude beyond the exact engines' reach,
    in minutes of wall clock.  Runs are repeated and the *median* asserted
    so one scheduling hiccup cannot fail the bound, and consecutive runs
    must produce identical outcomes (the tier's byte-determinism contract).
    """
    scenario = ClusterScenario.paper_scale()
    training_started = time.perf_counter()
    predictor = train_cluster_predictor(scenario)
    training_seconds = time.perf_counter() - training_started

    run_times = []
    outcomes = []
    for _ in range(_FLUID_RUNS):
        started = time.perf_counter()
        outcomes.append(_build_fluid_fleet(scenario, predictor).run(_FLUID_HORIZON_S))
        run_times.append(time.perf_counter() - started)
    median_seconds = sorted(run_times)[len(run_times) // 2]
    assert all(outcome == outcomes[0] for outcome in outcomes[1:]), (
        "seeded fluid repeats diverged"
    )

    # One extra pass through the benchmark fixture for the pytest-benchmark
    # json's own timing distribution.
    benchmark.pedantic(
        lambda: _build_fluid_fleet(scenario, predictor).run(_FLUID_HORIZON_S),
        iterations=1,
        rounds=1,
    )

    outcome = outcomes[0]
    measurements = {
        "num_nodes": _FLUID_NODES,
        "total_ebs": _FLUID_EBS,
        "horizon_s": _FLUID_HORIZON_S,
        "max_concurrent_restarts": _FLUID_MAX_CONCURRENT,
        "training_s": round(training_seconds, 2),
        "run_s_median": round(median_seconds, 2),
        "run_s_all": [round(seconds, 2) for seconds in run_times],
        "bound_s": _FLUID_BOUND_S,
        "availability": round(outcome.availability, 6),
        "crashes": outcome.crashes,
        "rejuvenations": outcome.rejuvenations,
        "deterministic_repeats": True,
    }
    benchmark.extra_info.update(measurements)
    _record("fluid_scale", measurements)

    print_comparison(
        "Cluster: fluid tier at scale (rolling predictive)",
        [
            ("fleet", "-", f"{_FLUID_NODES} nodes, {_FLUID_EBS} EBs, {_FLUID_HORIZON_S:.0f}s"),
            ("M5P training (one-off)", "-", f"{training_seconds:.1f} s"),
            ("fluid run (median)", f"<= {_FLUID_BOUND_S:.0f} s", f"{median_seconds:.1f} s"),
            ("per-run times", "-", ", ".join(f"{s:.1f}s" for s in run_times)),
            ("availability", "-", f"{outcome.availability:.4f}"),
            ("crashes / rejuvenations", "-", f"{outcome.crashes} / {outcome.rejuvenations}"),
            ("seeded repeats identical", "expected", "True"),
        ],
    )
    assert median_seconds <= _FLUID_BOUND_S
