"""Benchmark the clustered-deployment experiment (rolling rejuvenation)."""

import pytest

from repro.experiments.cluster import run_cluster_experiment
from repro.experiments.scenarios import ClusterScenario

from bench_util import print_comparison


@pytest.fixture(scope="session")
def cluster_scenario() -> ClusterScenario:
    """The paper-scale fleet: three 1 GB-heap nodes, 100 EBs each, N=30."""
    return ClusterScenario.paper_scale()


def test_cluster_rolling_rejuvenation(benchmark, cluster_scenario):
    """Regenerate the three-strategy fleet comparison at paper scale."""
    result = benchmark.pedantic(
        run_cluster_experiment, kwargs={"scenario": cluster_scenario}, iterations=1, rounds=1
    )
    rows = []
    for name, outcome in result.outcomes().items():
        rows.append((f"{name} availability", "-", f"{outcome.availability:.4f}"))
        rows.append((f"{name} full outage", "-", f"{outcome.full_outage_seconds:.0f} s"))
        rows.append((f"{name} crashes / restarts", "-", f"{outcome.crashes} / {outcome.rejuvenations}"))
    rows.append(("time-based interval", "-", f"{result.time_based_interval_seconds:.0f} s"))
    rows.append(("rolling wins (higher avail., no outage)", "expected", str(result.rolling_wins())))
    print_comparison("Cluster: coordinated rolling predictive rejuvenation", rows)

    assert result.rolling_wins()
