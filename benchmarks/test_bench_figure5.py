"""Benchmark regenerating Experiment 4.4 / Figure 5 (two aging resources)."""

from repro.core.evaluation import format_duration
from repro.experiments.exp44 import run_experiment_44

from bench_util import print_comparison

#: The paper's reported accuracy for M5P in Experiment 4.4 (seconds).
PAPER_EXP44_M5P = {"MAE": 16 * 60 + 52, "S-MAE": 13 * 60 + 22, "PRE-MAE": 18 * 60 + 16, "POST-MAE": 2 * 60 + 5}


def test_figure5_two_resource_aging(benchmark, paper_scenarios, exp44_result):
    """Regenerate Figure 5, the Exp. 4.4 accuracy and the root-cause clues."""
    benchmark.pedantic(run_experiment_44, kwargs={"scenarios": paper_scenarios}, iterations=1, rounds=1)
    result = exp44_result
    rows = []
    for metric, paper_value in PAPER_EXP44_M5P.items():
        rows.append(
            (f"M5P {metric}", format_duration(paper_value), format_duration(result.m5p_evaluation.as_dict()[metric]))
        )
    rows.append(("Linear Regression MAE", "(not reported)", format_duration(result.linear_evaluation.mae_seconds)))
    rows.append(("Model size", "36 leaves / 35 inner nodes", f"{result.m5p_leaves} leaves / {result.m5p_inner_nodes} inner nodes"))
    rows.append(("Training instances", "2752 (6 single-resource runs)", str(result.training_instances)))
    rows.append(("Experiment duration", "1 h 55 min", format_duration(result.test_duration_seconds)))
    rows.append(
        (
            "Root-cause clue from the tree",
            "system memory, then threads",
            ", ".join(name for name, _score in result.root_cause.resources[:3]) or "none",
        )
    )
    print_comparison("Figure 5 (Experiment 4.4): aging due to two resources", rows)

    # Shape checks: the run crashes from one of the injected resources, the
    # prediction sharpens near the crash, and the tree inspection implicates
    # both memory and threads even though they were never injected together
    # during training.
    assert result.crash_resource in ("memory", "threads")
    assert result.m5p_evaluation.post_mae_seconds < result.m5p_evaluation.pre_mae_seconds
    assert result.implicates_memory_and_threads()
    series = result.figure5_series()
    assert series["num_threads"].shape == series["time_seconds"].shape
