"""Plain helpers shared by the benchmark modules.

These live outside ``conftest.py`` on purpose: conftest modules are loaded
by pytest under the bare module name ``conftest``, so importing one by name
collides with the ``tests/`` conftests whenever both suites are collected in
a single pytest invocation.  A regular module has a unique name and no such
restriction.
"""

from __future__ import annotations

#: Seed shared by every benchmark so the whole harness is reproducible.
BENCH_SEED = 2010


def print_comparison(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a paper-versus-measured table in a fixed-width layout."""
    print(f"\n=== {title} ===")
    print(f"{'quantity':38s}{'paper':>24s}{'measured':>24s}")
    for label, paper_value, measured_value in rows:
        print(f"{label:38s}{paper_value:>24s}{measured_value:>24s}")
