"""Micro-benchmarks of training and prediction cost of the learners.

The paper selects M5P partly "because it has low training and prediction
costs and we will eventually want on-line processing".  These benchmarks
measure that claim directly on a paper-scale training set: how long it takes
to train each learner on the Experiment 4.1 dataset and how long a single
on-line prediction takes.
"""

import numpy as np
import pytest

from repro.core.dataset import build_dataset
from repro.core.predictor import AgingPredictor
from repro.experiments.runner import run_memory_leak_trace
from repro.ml.linear_regression import LinearRegressionModel
from repro.ml.m5p import M5PModelTree
from repro.ml.regression_tree import RegressionTree

from bench_util import BENCH_SEED


@pytest.fixture(scope="module")
def training_dataset(paper_scenarios):
    """A paper-scale training dataset (two crashed runs, full Table 2 set)."""
    config = paper_scenarios.config
    traces = [
        run_memory_leak_trace(config, workload_ebs=100, n=30, seed=BENCH_SEED + 800),
        run_memory_leak_trace(config, workload_ebs=200, n=30, seed=BENCH_SEED + 801),
    ]
    return build_dataset(traces)


def test_train_m5p(benchmark, training_dataset):
    model = benchmark.pedantic(
        lambda: M5PModelTree(min_instances=10, attribute_names=training_dataset.feature_names).fit(
            training_dataset.features, training_dataset.targets
        ),
        iterations=1,
        rounds=3,
    )
    assert model.num_leaves >= 1


def test_train_linear_regression(benchmark, training_dataset):
    model = benchmark.pedantic(
        lambda: LinearRegressionModel(attribute_names=training_dataset.feature_names).fit(
            training_dataset.features, training_dataset.targets
        ),
        iterations=1,
        rounds=3,
    )
    assert model.is_fitted


def test_train_regression_tree(benchmark, training_dataset):
    model = benchmark.pedantic(
        lambda: RegressionTree(min_samples_leaf=10, attribute_names=training_dataset.feature_names).fit(
            training_dataset.features, training_dataset.targets
        ),
        iterations=1,
        rounds=3,
    )
    assert model.num_leaves >= 1


def test_single_online_prediction_m5p(benchmark, training_dataset):
    """Latency of one on-line prediction (one 15-second monitoring mark)."""
    model = M5PModelTree(min_instances=10, attribute_names=training_dataset.feature_names).fit(
        training_dataset.features, training_dataset.targets
    )
    row = training_dataset.features[len(training_dataset.features) // 2]
    prediction = benchmark(lambda: model.predict_one(row))
    assert np.isfinite(prediction)


def test_predict_full_trace_with_aging_predictor(benchmark, paper_scenarios):
    """End-to-end cost of predicting a whole trace (features + model)."""
    config = paper_scenarios.config
    training = [run_memory_leak_trace(config, workload_ebs=100, n=30, seed=BENCH_SEED + 820)]
    test_trace = run_memory_leak_trace(config, workload_ebs=150, n=30, seed=BENCH_SEED + 821)
    predictor = AgingPredictor(model="m5p").fit(training)
    predictions = benchmark.pedantic(lambda: predictor.predict_trace(test_trace), iterations=1, rounds=3)
    assert predictions.shape == (len(test_trace),)
