"""Micro-benchmarks of the aging-aware routing hot path on a wide fleet.

Two measurements, same methodology as the engine benchmarks (interleaved
pairs, best-of-three per side within a pair, median per-pair ratio — so
machine noise hits both sides of a pair alike):

* **Regime cache** — ``AgingAwareRouting.route`` used to recompute every
  candidate's forecast-derived health weight and walk a per-node credit
  dict on every request.  Between forecast changes the policy now runs on
  frozen weights and a dense credit array; this drives a wide fleet with
  *messy* forecast values (no exact credit cycle exists) through a
  realistic request/mark cadence and asserts the regime path is measurably
  faster with a bit-for-bit identical decision stream.
* **Cycle replay** — with dyadic health weights (healthy 1.0 / shedding
  0.5, the common fleet shape) smooth WRR is exactly periodic; Brent
  detection finds the period and every further request replays a recorded
  winner in O(1) instead of scanning the fleet.  Epoch-wired nodes (the
  fleet-shared ``RoutingEpoch`` counter real cluster nodes carry) make
  regime revalidation two integer compares.
"""

import time

from repro.cluster.routing import AgingAwareRouting, RoutingEpoch

from bench_util import print_comparison

_NUM_NODES = 48
_REQUESTS = 20_000
_MARK_EVERY = 500  # one node's forecast moves every N requests (a mark cadence)
_PAIRS = 5
_RUNS_PER_SIDE = 3
_MIN_SPEEDUP = 1.5

_REPLAY_MARK_EVERY = 2_000  # longer regimes: most requests land in the replay
_MIN_REPLAY_SPEEDUP = 2.5


class _Node:
    """The attributes the routing layer reads, plus the version counter."""

    __slots__ = ("node_id", "predicted_ttf_seconds", "forecast_version")

    def __init__(self, node_id: int, predicted_ttf_seconds: float) -> None:
        self.node_id = node_id
        self.predicted_ttf_seconds = predicted_ttf_seconds
        self.forecast_version = 0


def _drive(cache_weights: bool) -> tuple[float, list[int]]:
    """Route the full request stream once; return (seconds, decisions)."""
    policy = AgingAwareRouting(ttf_comfort_seconds=900.0, shed_floor=0.1, cache_weights=cache_weights)
    nodes = [_Node(i, 900.0 if i % 3 else 450.0) for i in range(_NUM_NODES)]
    decisions = []
    append = decisions.append
    route = policy.route
    started = time.perf_counter()
    for request in range(_REQUESTS):
        if request % _MARK_EVERY == 0:
            node = nodes[(request // _MARK_EVERY) % _NUM_NODES]
            node.predicted_ttf_seconds = 300.0 + (request % 700)
            node.forecast_version += 1
        append(route(nodes).node_id)
    return time.perf_counter() - started, decisions


def _best_of(cache_weights: bool) -> tuple[float, list[int]]:
    best_seconds, decisions = None, None
    for _ in range(_RUNS_PER_SIDE):
        elapsed, decisions = _drive(cache_weights)
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, decisions


def test_routing_weight_cache_speedup(benchmark):
    """Wide-fleet routing: cached weights >=1.5x, identical decisions."""
    ratios = []
    uncached_times = []
    cached_times = []
    for _ in range(_PAIRS):
        uncached_seconds, uncached_decisions = _best_of(cache_weights=False)
        cached_seconds, cached_decisions = _best_of(cache_weights=True)
        assert cached_decisions == uncached_decisions
        uncached_times.append(uncached_seconds)
        cached_times.append(cached_seconds)
        ratios.append(uncached_seconds / cached_seconds)

    # One extra cached round through the benchmark fixture so the BENCH
    # json records the hot path's own timing distribution.
    benchmark.pedantic(lambda: _drive(cache_weights=True), iterations=1, rounds=1)

    speedup = sorted(ratios)[len(ratios) // 2]
    benchmark.extra_info["num_nodes"] = _NUM_NODES
    benchmark.extra_info["requests"] = _REQUESTS
    benchmark.extra_info["uncached_s"] = round(min(uncached_times), 3)
    benchmark.extra_info["cached_s"] = round(min(cached_times), 3)
    benchmark.extra_info["speedup_x"] = round(speedup, 2)
    print_comparison(
        f"Routing: weight cache on a {_NUM_NODES}-node fleet, {_REQUESTS} requests",
        [
            ("uncached route (best pair)", "-", f"{min(uncached_times):.3f} s"),
            ("cached route (best pair)", "-", f"{min(cached_times):.3f} s"),
            ("speedup (median of pairs)", f">= {_MIN_SPEEDUP:.1f}x", f"{speedup:.2f}x"),
            ("per-pair ratios", "-", ", ".join(f"{r:.2f}x" for r in ratios)),
            ("decision streams identical", "expected", "True"),
        ],
    )
    assert speedup >= _MIN_SPEEDUP


class _EpochNode:
    """Epoch-wired stub: bumps the fleet-shared counter like real nodes."""

    __slots__ = ("node_id", "predicted_ttf_seconds", "forecast_version", "routing_epoch")

    def __init__(self, node_id: int, predicted_ttf_seconds: float, epoch: RoutingEpoch) -> None:
        self.node_id = node_id
        self.predicted_ttf_seconds = predicted_ttf_seconds
        self.forecast_version = 0
        self.routing_epoch = epoch

    def set_forecast(self, predicted_ttf_seconds: float) -> None:
        self.predicted_ttf_seconds = predicted_ttf_seconds
        self.forecast_version += 1
        self.routing_epoch.version += 1


def _drive_dyadic(cache_weights: bool) -> tuple[float, list[int]]:
    """Route a dyadic-weight request stream once; return (seconds, decisions)."""
    policy = AgingAwareRouting(ttf_comfort_seconds=900.0, shed_floor=0.1, cache_weights=cache_weights)
    epoch = RoutingEpoch()
    # A third of the fleet sheds at weight 0.5: smooth WRR cycles within
    # 2 * sum(weights) <= 96 requests, well inside the recording cap.
    nodes = [_EpochNode(i, 900.0 if i % 3 else 450.0, epoch) for i in range(_NUM_NODES)]
    decisions = []
    append = decisions.append
    route = policy.route
    started = time.perf_counter()
    for request in range(_REQUESTS):
        if request % _REPLAY_MARK_EVERY == 0:
            node = nodes[(request // _REPLAY_MARK_EVERY) % _NUM_NODES]
            node.set_forecast(450.0 if node.predicted_ttf_seconds == 900.0 else 900.0)
        append(route(nodes).node_id)
    return time.perf_counter() - started, decisions


def _best_of_dyadic(cache_weights: bool) -> tuple[float, list[int]]:
    best_seconds, decisions = None, None
    for _ in range(_RUNS_PER_SIDE):
        elapsed, decisions = _drive_dyadic(cache_weights)
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, decisions


def test_routing_cycle_replay_speedup(benchmark):
    """Dyadic-weight fleet: cycle replay >=2.5x, identical decisions."""
    ratios = []
    reference_times = []
    replay_times = []
    for _ in range(_PAIRS):
        reference_seconds, reference_decisions = _best_of_dyadic(cache_weights=False)
        replay_seconds, replay_decisions = _best_of_dyadic(cache_weights=True)
        assert replay_decisions == reference_decisions
        reference_times.append(reference_seconds)
        replay_times.append(replay_seconds)
        ratios.append(reference_seconds / replay_seconds)

    benchmark.pedantic(lambda: _drive_dyadic(cache_weights=True), iterations=1, rounds=1)

    speedup = sorted(ratios)[len(ratios) // 2]
    benchmark.extra_info["num_nodes"] = _NUM_NODES
    benchmark.extra_info["requests"] = _REQUESTS
    benchmark.extra_info["reference_s"] = round(min(reference_times), 3)
    benchmark.extra_info["replay_s"] = round(min(replay_times), 3)
    benchmark.extra_info["speedup_x"] = round(speedup, 2)
    print_comparison(
        f"Routing: cycle replay on a {_NUM_NODES}-node dyadic fleet, {_REQUESTS} requests",
        [
            ("reference route (best pair)", "-", f"{min(reference_times):.3f} s"),
            ("replay route (best pair)", "-", f"{min(replay_times):.3f} s"),
            ("speedup (median of pairs)", f">= {_MIN_REPLAY_SPEEDUP:.1f}x", f"{speedup:.2f}x"),
            ("per-pair ratios", "-", ", ".join(f"{r:.2f}x" for r in ratios)),
            ("decision streams identical", "expected", "True"),
        ],
    )
    assert speedup >= _MIN_REPLAY_SPEEDUP
