"""Micro-benchmark of the aging-aware routing weight cache on a wide fleet.

``AgingAwareRouting.route`` used to recompute every candidate's
forecast-derived health weight on every request, even though a weight can
only move at a monitoring mark, a crash or a restart.  The policy now
memoizes the weight vector per (candidate list, forecast version counters)
and rebuilds only on a state change — this benchmark drives a wide fleet
through a realistic request/mark cadence and asserts the cached policy is
measurably faster while producing the bit-for-bit identical decision
stream.

Methodology matches the engine benchmarks: interleaved uncached/cached
pairs, best-of-three per side within a pair, median per-pair ratio — so
machine noise hits both sides of a pair alike.
"""

import time

from repro.cluster.routing import AgingAwareRouting

from bench_util import print_comparison

_NUM_NODES = 48
_REQUESTS = 20_000
_MARK_EVERY = 500  # one node's forecast moves every N requests (a mark cadence)
_PAIRS = 5
_RUNS_PER_SIDE = 3
_MIN_SPEEDUP = 1.5


class _Node:
    """The attributes the routing layer reads, plus the version counter."""

    __slots__ = ("node_id", "predicted_ttf_seconds", "forecast_version")

    def __init__(self, node_id: int, predicted_ttf_seconds: float) -> None:
        self.node_id = node_id
        self.predicted_ttf_seconds = predicted_ttf_seconds
        self.forecast_version = 0


def _drive(cache_weights: bool) -> tuple[float, list[int]]:
    """Route the full request stream once; return (seconds, decisions)."""
    policy = AgingAwareRouting(ttf_comfort_seconds=900.0, shed_floor=0.1, cache_weights=cache_weights)
    nodes = [_Node(i, 900.0 if i % 3 else 450.0) for i in range(_NUM_NODES)]
    decisions = []
    append = decisions.append
    route = policy.route
    started = time.perf_counter()
    for request in range(_REQUESTS):
        if request % _MARK_EVERY == 0:
            node = nodes[(request // _MARK_EVERY) % _NUM_NODES]
            node.predicted_ttf_seconds = 300.0 + (request % 700)
            node.forecast_version += 1
        append(route(nodes).node_id)
    return time.perf_counter() - started, decisions


def _best_of(cache_weights: bool) -> tuple[float, list[int]]:
    best_seconds, decisions = None, None
    for _ in range(_RUNS_PER_SIDE):
        elapsed, decisions = _drive(cache_weights)
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, decisions


def test_routing_weight_cache_speedup(benchmark):
    """Wide-fleet routing: cached weights >=1.5x, identical decisions."""
    ratios = []
    uncached_times = []
    cached_times = []
    for _ in range(_PAIRS):
        uncached_seconds, uncached_decisions = _best_of(cache_weights=False)
        cached_seconds, cached_decisions = _best_of(cache_weights=True)
        assert cached_decisions == uncached_decisions
        uncached_times.append(uncached_seconds)
        cached_times.append(cached_seconds)
        ratios.append(uncached_seconds / cached_seconds)

    # One extra cached round through the benchmark fixture so the BENCH
    # json records the hot path's own timing distribution.
    benchmark.pedantic(lambda: _drive(cache_weights=True), iterations=1, rounds=1)

    speedup = sorted(ratios)[len(ratios) // 2]
    benchmark.extra_info["num_nodes"] = _NUM_NODES
    benchmark.extra_info["requests"] = _REQUESTS
    benchmark.extra_info["uncached_s"] = round(min(uncached_times), 3)
    benchmark.extra_info["cached_s"] = round(min(cached_times), 3)
    benchmark.extra_info["speedup_x"] = round(speedup, 2)
    print_comparison(
        f"Routing: weight cache on a {_NUM_NODES}-node fleet, {_REQUESTS} requests",
        [
            ("uncached route (best pair)", "-", f"{min(uncached_times):.3f} s"),
            ("cached route (best pair)", "-", f"{min(cached_times):.3f} s"),
            ("speedup (median of pairs)", f">= {_MIN_SPEEDUP:.1f}x", f"{speedup:.2f}x"),
            ("per-pair ratios", "-", ", ".join(f"{r:.2f}x" for r in ratios)),
            ("decision streams identical", "expected", "True"),
        ],
    )
    assert speedup >= _MIN_SPEEDUP
