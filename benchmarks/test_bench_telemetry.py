"""Benchmark of the telemetry layer's overhead on the instrumented engines.

The instrumentation contract is "zero overhead when disabled": every hot
path guards its telemetry calls behind a single ``tel is not None`` check
on a reference captured at construction.  The un-instrumented code no
longer exists to diff against, so the bench pins the next-best claims on a
full event-driven cluster run (fleet + nodes + routing + coordinator +
per-node testbeds -- every instrumented layer):

* **Disabled noise floor** -- interleaved disabled/disabled pairs measure
  the run-to-run spread of the disabled path itself; the recorded band is
  the resolution below which any residual guard cost hides.
* **Enabled overhead** -- interleaved disabled/enabled pairs, best-of-two
  per side, median per-pair ratio (machine noise hits both sides alike).
  Recording ~500 events plus counters and gauges must stay under
  ``_MAX_ENABLED_OVERHEAD``.
* **Transparency and determinism at bench scale** -- traced and untraced
  runs return equal outcomes, and every traced run yields one identical
  digest.

The measurements land in ``benchmarks/BENCH_telemetry.json`` so future PRs
inherit an overhead trajectory for the instrumentation layer.
"""

import json
import time
from pathlib import Path

from repro.cluster.coordinator import RollingPredictiveRejuvenation
from repro.cluster.engine import ClusterEngine
from repro.cluster.routing import AgingAwareRouting
from repro.experiments.scenarios import ClusterScenario
from repro.telemetry import Telemetry, activate, trace_digest

from bench_util import print_comparison

_HORIZON_SECONDS = 3600.0
_PAIRS = 5
_RUNS_PER_SIDE = 2
_MAX_ENABLED_OVERHEAD = 1.35
_BENCH_JSON = Path(__file__).resolve().parent / "BENCH_telemetry.json"


def _drive(traced: bool):
    """One full cluster run; returns (seconds, outcome, telemetry-or-None)."""
    scenario = ClusterScenario.fast("memory")
    telemetry = None
    if traced:
        telemetry = Telemetry()
        telemetry.meta = {"experiment": "bench-cluster", "params": {"seed": scenario.cluster_seed}}
    started = time.perf_counter()
    with activate(telemetry):
        engine = ClusterEngine(
            num_nodes=scenario.num_nodes,
            config=scenario.config,
            node_configs=scenario.node_configs,
            total_ebs=scenario.total_ebs,
            injector_factory=scenario.injector_factory,
            routing_policy=AgingAwareRouting(),
            coordinator=RollingPredictiveRejuvenation(),
            alarm_threshold_seconds=scenario.alarm_threshold_seconds,
            alarm_consecutive=scenario.alarm_consecutive,
        )
        outcome = engine.run(_HORIZON_SECONDS)
    return time.perf_counter() - started, outcome, telemetry


def _best_of(traced: bool):
    runs = [_drive(traced) for _ in range(_RUNS_PER_SIDE)]
    return min(runs, key=lambda run: run[0])


def test_telemetry_overhead(benchmark):
    overhead_ratios, noise_ratios = [], []
    disabled_times, enabled_times = [], []
    digests = set()
    for _ in range(_PAIRS):
        first_seconds, first_outcome, _ = _drive(traced=False)
        second_seconds, _, _ = _drive(traced=False)
        noise_ratios.append(max(first_seconds, second_seconds) / min(first_seconds, second_seconds))
        disabled_seconds = min(first_seconds, second_seconds)
        enabled_seconds, traced_outcome, telemetry = _best_of(traced=True)
        assert traced_outcome == first_outcome  # observer transparency
        digests.add(trace_digest(telemetry))
        disabled_times.append(disabled_seconds)
        enabled_times.append(enabled_seconds)
        overhead_ratios.append(enabled_seconds / disabled_seconds)
    assert len(digests) == 1  # every traced run is bit-identical

    overhead = sorted(overhead_ratios)[len(overhead_ratios) // 2]
    noise = sorted(noise_ratios)[len(noise_ratios) // 2]
    _, _, telemetry = _drive(traced=True)

    # One extra traced run through the benchmark fixture so the pytest
    # json records the enabled path's own timing distribution.
    benchmark.pedantic(lambda: _drive(traced=True), iterations=1, rounds=1)

    measurements = {
        "workload": "ClusterScenario.fast('memory'), event engine, 3600 s horizon",
        "pairs": _PAIRS,
        "disabled_s": round(min(disabled_times), 3),
        "enabled_s": round(min(enabled_times), 3),
        "enabled_overhead_x": round(overhead, 3),
        "disabled_noise_floor_x": round(noise, 3),
        "events_recorded": len(telemetry.events),
        "sim_digest": digests.pop(),
    }
    benchmark.extra_info.update(measurements)
    _BENCH_JSON.write_text(json.dumps(measurements, indent=2, sort_keys=True) + "\n")

    print_comparison(
        "Telemetry: instrumented cluster run, disabled versus enabled",
        [
            ("disabled run (best pair)", "-", f"{min(disabled_times):.3f} s"),
            ("enabled run (best pair)", "-", f"{min(enabled_times):.3f} s"),
            ("enabled overhead (median)", f"<= {_MAX_ENABLED_OVERHEAD:.2f}x", f"{overhead:.3f}x"),
            ("disabled A/A noise floor", "-", f"{noise:.3f}x"),
            ("events recorded per run", "-", str(measurements["events_recorded"])),
            ("traced outcomes == untraced", "expected", "True"),
            ("traced digests identical", "expected", "True"),
        ],
    )
    assert overhead <= _MAX_ENABLED_OVERHEAD
