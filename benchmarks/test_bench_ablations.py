"""Ablation benchmarks on the design choices DESIGN.md calls out."""

import pytest

from repro.core.evaluation import format_duration
from repro.experiments.ablations import (
    _dynamic_scenario_traces,
    run_derived_variable_ablation,
    run_security_margin_sweep,
    run_smoothing_ablation,
    run_window_sweep,
)

from bench_util import print_comparison


@pytest.fixture(scope="module")
def dynamic_traces(paper_scenarios):
    """Training and test traces of the dynamic scenario, generated once."""
    return _dynamic_scenario_traces(paper_scenarios)


def _rows(points):
    return [(point.label, "(not quantified in the paper)", format_duration(point.mae_seconds)) for point in points]


def test_ablation_sliding_window_length(benchmark, paper_scenarios, dynamic_traces):
    """The window trade-off of Section 2.2: noise tolerance vs reaction speed."""
    points = benchmark.pedantic(
        run_window_sweep,
        kwargs={"scenarios": paper_scenarios, "windows": (2, 6, 12, 24, 48), "traces": dynamic_traces},
        iterations=1,
        rounds=1,
    )
    print_comparison("Ablation: sliding-window length (MAE on the dynamic scenario)", _rows(points))
    assert len(points) == 5
    assert all(point.mae_seconds >= 0 for point in points)


def test_ablation_derived_variables(benchmark, paper_scenarios, dynamic_traces):
    """The value of the derived consumption-speed variables of Table 2."""
    points = benchmark.pedantic(
        run_derived_variable_ablation,
        kwargs={"scenarios": paper_scenarios, "traces": dynamic_traces},
        iterations=1,
        rounds=1,
    )
    print_comparison("Ablation: derived speed variables on/off (MAE)", _rows(points))
    by_label = {point.label: point for point in points}
    assert set(by_label) == {"raw+derived", "raw only"}


def test_ablation_m5p_smoothing(benchmark, paper_scenarios, dynamic_traces):
    """Quinlan's smoothing filter on/off."""
    points = benchmark.pedantic(
        run_smoothing_ablation,
        kwargs={"scenarios": paper_scenarios, "traces": dynamic_traces},
        iterations=1,
        rounds=1,
    )
    print_comparison("Ablation: M5P prediction smoothing (MAE)", _rows(points))
    assert {point.label for point in points} == {"smoothing on", "smoothing off"}


def test_ablation_security_margin(benchmark, paper_scenarios, dynamic_traces):
    """S-MAE as a function of the security margin (the paper fixes 10 %)."""
    points = benchmark.pedantic(
        run_security_margin_sweep,
        kwargs={"scenarios": paper_scenarios, "margins": (0.0, 0.05, 0.10, 0.20, 0.30), "traces": dynamic_traces},
        iterations=1,
        rounds=1,
    )
    rows = [
        (point.label, "S-MAE <= MAE by construction", format_duration(point.s_mae_seconds)) for point in points
    ]
    print_comparison("Ablation: S-MAE security margin sweep", rows)
    smae = [point.s_mae_seconds for point in points]
    assert all(earlier >= later - 1e-9 for earlier, later in zip(smae, smae[1:]))
