"""Benchmark regenerating Experiment 4.2 / Figure 3 (dynamic aging)."""

from repro.core.evaluation import format_duration
from repro.experiments.exp42 import run_experiment_42

from bench_util import print_comparison

#: The paper's reported accuracy for M5P in Experiment 4.2 (seconds).
PAPER_EXP42_M5P = {"MAE": 16 * 60 + 26, "S-MAE": 13 * 60 + 3, "PRE-MAE": 17 * 60 + 15, "POST-MAE": 8 * 60 + 14}


def test_figure3_dynamic_aging(benchmark, paper_scenarios, exp42_result):
    """Regenerate Figure 3 and the Experiment 4.2 accuracy figures."""
    benchmark.pedantic(run_experiment_42, kwargs={"scenarios": paper_scenarios}, iterations=1, rounds=1)
    result = exp42_result
    rows = []
    for metric, paper_value in PAPER_EXP42_M5P.items():
        measured = result.m5p_evaluation.as_dict()[metric]
        rows.append((f"M5P {metric}", format_duration(paper_value), format_duration(measured)))
    rows.append(
        (
            "Linear Regression MAE",
            "'really unacceptable'",
            format_duration(result.linear_evaluation.mae_seconds),
        )
    )
    rows.append(("Model size", "36 leaves / 35 inner nodes", f"{result.m5p_leaves} leaves / {result.m5p_inner_nodes} inner nodes"))
    rows.append(("Training instances", "1710", str(result.training_instances)))
    rows.append(("Experiment duration", "1 h 47 min", format_duration(result.test_duration_seconds)))
    rows.append(
        (
            "Prediction drops when injection starts",
            "drastic drop after minute 20",
            "yes" if result.adapts_to_injection_start() else "no",
        )
    )
    print_comparison("Figure 3 (Experiment 4.2): dynamic and variable software aging", rows)

    # Shape checks: the model adapts to the injection start, beats the linear
    # baseline and is at its best near the crash.
    assert result.adapts_to_injection_start()
    assert result.m5p_evaluation.mae_seconds < result.linear_evaluation.mae_seconds
    assert result.m5p_evaluation.post_mae_seconds < result.m5p_evaluation.pre_mae_seconds
    series = result.figure3_series()
    assert series["predicted_ttf_seconds"].shape == series["time_seconds"].shape
