"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure of the paper at the
paper-scale configuration (1 GB heap, 2048 threads, 15-second monitoring).
The expensive experiment drivers are wrapped in session-scoped fixtures so a
result computed for the timing benchmark is reused by the reporting
benchmark of the same experiment.

Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag lets the paper-versus-measured tables print to the console.
"""

from __future__ import annotations

import pytest

from repro.experiments.exp41 import run_experiment_41
from repro.experiments.exp42 import run_experiment_42
from repro.experiments.exp43 import run_experiment_43
from repro.experiments.exp44 import run_experiment_44
from repro.experiments.scenarios import ExperimentScenarios

from bench_util import BENCH_SEED


@pytest.fixture(scope="session")
def paper_scenarios() -> ExperimentScenarios:
    """The paper-scale experiment configuration."""
    return ExperimentScenarios.paper_scale(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def exp41_result(paper_scenarios):
    return run_experiment_41(paper_scenarios)


@pytest.fixture(scope="session")
def exp42_result(paper_scenarios):
    return run_experiment_42(paper_scenarios)


@pytest.fixture(scope="session")
def exp43_result(paper_scenarios):
    return run_experiment_43(paper_scenarios)


@pytest.fixture(scope="session")
def exp44_result(paper_scenarios):
    return run_experiment_44(paper_scenarios)
