"""Benchmarks of the sweep orchestration layer: parallelism and caching.

Two claims, measured on the same 8-point ``figure2`` sweep (small scale,
seeds 1..8 — each point is an independent seeded run):

* **Parallel dispatch** — ``workers=4`` versus the sequential in-process
  path, interleaved median-of-pairs with best-of-two per side.  The >=2.5x
  assertion only makes sense with cores to spare, so it is gated on the
  CPUs actually available to this process (CI boxes and laptops qualify;
  a 1-core container still measures and records, but cannot assert).
* **Content-addressed cache** — a warm rerun over a populated store must
  skip every point and beat the cold sweep by >=10x: serving a finished
  point costs one envelope parse instead of one simulation.

Besides the pytest-benchmark json, the module writes the machine-readable
``benchmarks/BENCH_sweep.json`` so future PRs inherit a perf trajectory
for the orchestration layer (sequential/parallel/cold/warm seconds plus
the environment that produced them).
"""

import json
import os
import time
from pathlib import Path

from repro import api

from bench_util import print_comparison

_EXPERIMENT = "figure2"
_SEEDS = "1..8"
_SCALE = "small"
_WORKERS = 4
_PAIRS = 3
_RUNS_PER_SIDE = 2
_MIN_PARALLEL_SPEEDUP = 2.5
_MIN_WARM_SPEEDUP = 10.0
_BENCH_JSON = Path(__file__).resolve().parent / "BENCH_sweep.json"


def _points() -> list[api.RunPoint]:
    return api.expand_sweep(_EXPERIMENT, {"seed": _SEEDS, "scale": _SCALE})


def _sweep_once(root: Path, tag: str, index: int, workers: int, use_cache: bool) -> tuple[float, Path]:
    """One full sweep into a fresh store directory; returns (seconds, dir)."""
    out_dir = root / f"{tag}-{index}"
    store = api.ResultStore(out_dir)
    started = time.perf_counter()
    outcomes = api.run_points(_points(), store, workers=workers, use_cache=use_cache)
    elapsed = time.perf_counter() - started
    assert all(outcome.status == "ran" for outcome in outcomes)
    return elapsed, out_dir


def _artifacts(directory: Path) -> dict[str, bytes]:
    return {path.name: path.read_bytes() for path in directory.glob("*.json")}


def _best_of(run, count: int):
    results = [run(i) for i in range(count)]
    return min(results, key=lambda pair: pair[0])


def test_sweep_parallel_and_cache_speedup(benchmark, tmp_path):
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()

    # ---- sequential versus parallel, interleaved pairs ------------------
    ratios, sequential_times, parallel_times = [], [], []
    parallel_dir = sequential_dir = None
    for pair in range(_PAIRS):
        sequential_seconds, sequential_dir = _best_of(
            lambda i, p=pair: _sweep_once(tmp_path, f"seq{p}", i, workers=1, use_cache=False),
            _RUNS_PER_SIDE,
        )
        parallel_seconds, parallel_dir = _best_of(
            lambda i, p=pair: _sweep_once(tmp_path, f"par{p}", i, workers=_WORKERS, use_cache=False),
            _RUNS_PER_SIDE,
        )
        sequential_times.append(sequential_seconds)
        parallel_times.append(parallel_seconds)
        ratios.append(sequential_seconds / parallel_seconds)
    parallel_speedup = sorted(ratios)[len(ratios) // 2]

    # Orchestration-layer bit-for-bit discipline: same artifact bytes.
    assert _artifacts(sequential_dir) == _artifacts(parallel_dir)

    # ---- cold versus warm cache ----------------------------------------
    cold_seconds, warm_dir = _sweep_once(tmp_path, "cache", 0, workers=1, use_cache=True)
    warm_store = api.ResultStore(warm_dir)
    warm_times = []
    for _ in range(3):
        started = time.perf_counter()
        outcomes = api.run_points(_points(), warm_store, workers=1, use_cache=True)
        warm_times.append(time.perf_counter() - started)
        assert all(outcome.status == "cached" for outcome in outcomes)
    warm_seconds = min(warm_times)
    warm_speedup = cold_seconds / warm_seconds

    # One extra warm pass through the benchmark fixture for the BENCH json.
    benchmark.pedantic(
        lambda: api.run_points(_points(), warm_store, workers=1), iterations=1, rounds=1
    )

    measurements = {
        "experiment": _EXPERIMENT,
        "seeds": _SEEDS,
        "scale": _SCALE,
        "points": len(_points()),
        "workers": _WORKERS,
        "cpus": cpus,
        "sequential_s": round(min(sequential_times), 3),
        "parallel_s": round(min(parallel_times), 3),
        "parallel_speedup_x": round(parallel_speedup, 2),
        # Whether the >=2.5x claim was actually asserted on this box: a
        # 1-CPU container measures (and records) but cannot verify it, so
        # trajectory consumers must not treat a gated number as a baseline.
        "parallel_asserted": cpus >= _WORKERS,
        "cold_s": round(cold_seconds, 3),
        "warm_s": round(warm_seconds, 4),
        "warm_speedup_x": round(warm_speedup, 1),
        "version": api.run(_EXPERIMENT, scale=_SCALE, seed=1).version,
    }
    benchmark.extra_info.update(measurements)
    _BENCH_JSON.write_text(json.dumps(measurements, indent=2, sort_keys=True) + "\n")

    parallel_expectation = (
        f">= {_MIN_PARALLEL_SPEEDUP}x" if cpus >= _WORKERS else f"(gated: {cpus} cpu(s))"
    )
    print_comparison(
        f"Sweep: {len(_points())}-point {_EXPERIMENT} grid, orchestration layer",
        [
            ("sequential sweep (best pair)", "-", f"{min(sequential_times):.3f} s"),
            (f"parallel sweep, {_WORKERS} workers", "-", f"{min(parallel_times):.3f} s"),
            ("parallel speedup (median)", parallel_expectation, f"{parallel_speedup:.2f}x"),
            ("cold sweep", "-", f"{cold_seconds:.3f} s"),
            ("warm sweep (all cached)", "-", f"{warm_seconds:.4f} s"),
            ("warm speedup", f">= {_MIN_WARM_SPEEDUP:.0f}x", f"{warm_speedup:.1f}x"),
            ("artifact bytes identical", "expected", "True"),
        ],
    )
    assert warm_speedup >= _MIN_WARM_SPEEDUP
    if cpus >= _WORKERS:
        assert parallel_speedup >= _MIN_PARALLEL_SPEEDUP
    else:
        print(
            f"(parallel-speedup assertion skipped: only {cpus} CPU(s) visible; "
            f"needs >= {_WORKERS})"
        )
