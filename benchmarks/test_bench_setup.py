"""Benchmarks for the experimental setup artefacts: Table 1 and Table 2."""

from repro.core.features import FeatureCatalog
from repro.testbed.config import MachineDescription, TestbedConfig
from repro.testbed.monitoring.metrics_catalog import RAW_METRICS

from bench_util import print_comparison


def test_table1_machine_description(benchmark):
    """Table 1 -- machine description of the simulated testbed."""
    description = benchmark(MachineDescription)
    rows = description.rows()
    assert len(rows) == 4
    config = TestbedConfig()
    print_comparison(
        "Table 1: machine description (paper testbed vs simulated substitute)",
        [
            ("App server JVM heap", "jdk1.5 with 1GB heap", f"simulated heap {config.heap_max_mb:.0f} MB"),
            ("App server software", "Tomcat 5.5.26", "TomcatServer model"),
            ("Database software", "MySQL 5.0.67", "MySQLServer model"),
            ("Client workload", "TPC-W clients", "TPC-W emulated browsers (shopping mix)"),
            ("Monitoring cadence", "15 s marks", f"{config.monitoring_interval_s:.0f} s marks"),
        ],
    )


def test_table2_variable_catalogue(benchmark):
    """Table 2 -- the variable set used to build every model."""
    catalog = benchmark(FeatureCatalog)
    names = catalog.feature_names
    assert len(RAW_METRICS) == 18
    derived = [name for name in names if name not in {metric.attribute for metric in RAW_METRICS}]
    print_comparison(
        "Table 2: variables used to build the models",
        [
            ("Raw monitored variables", "throughput ... % used Old", f"{len(RAW_METRICS)} variables"),
            ("Derived variables (speeds, ratios)", "SWA variation family", f"{len(derived)} variables"),
            ("Total variable catalogue", "~29 variable groups", f"{len(names)} variables"),
            ("Sliding window", "X observations (12 marks in 4.2)", f"{catalog.window} marks"),
        ],
    )
