"""Benchmark regenerating Experiment 4.1 / Table 3 (deterministic aging)."""

from repro.core.evaluation import format_duration
from repro.experiments.exp41 import run_experiment_41

from bench_util import print_comparison

#: The paper's Table 3, in seconds, keyed by (workload, model, metric).
PAPER_TABLE3 = {
    (75, "linear", "MAE"): 19 * 60 + 35,
    (75, "m5p", "MAE"): 15 * 60 + 14,
    (75, "linear", "S-MAE"): 14 * 60 + 17,
    (75, "m5p", "S-MAE"): 9 * 60 + 34,
    (150, "linear", "MAE"): 20 * 60 + 24,
    (150, "m5p", "MAE"): 5 * 60 + 46,
    (150, "linear", "S-MAE"): 17 * 60 + 24,
    (150, "m5p", "S-MAE"): 2 * 60 + 52,
    (75, "linear", "PRE-MAE"): 21 * 60 + 13,
    (75, "m5p", "PRE-MAE"): 16 * 60 + 22,
    (75, "linear", "POST-MAE"): 5 * 60 + 11,
    (75, "m5p", "POST-MAE"): 2 * 60 + 20,
    (150, "linear", "PRE-MAE"): 19 * 60 + 40,
    (150, "m5p", "PRE-MAE"): 6 * 60 + 18,
    (150, "linear", "POST-MAE"): 24 * 60 + 14,
    (150, "m5p", "POST-MAE"): 2 * 60 + 57,
}


def test_table3_deterministic_aging(benchmark, paper_scenarios, exp41_result):
    """Regenerate Table 3 and compare against the paper's reported errors."""
    # The timing part of the benchmark re-trains the M5P predictor on the
    # already-generated traces via the cached-trace path of the driver.
    benchmark.pedantic(
        run_experiment_41,
        kwargs={"scenarios": paper_scenarios},
        iterations=1,
        rounds=1,
    )
    rows = []
    for workload in exp41_result.test_workloads:
        for metric in ("MAE", "S-MAE", "PRE-MAE", "POST-MAE"):
            for model in ("linear", "m5p"):
                measured = exp41_result.evaluations[(workload, model)].as_dict()[metric]
                paper = PAPER_TABLE3[(workload, model, metric)]
                label = f"{workload}EBs {metric} ({'Lin.Reg' if model == 'linear' else 'M5P'})"
                rows.append((label, format_duration(paper), format_duration(measured)))
    rows.append(("M5P model size", "33 leaves / 30 inner nodes", f"{exp41_result.m5p_leaves} leaves / {exp41_result.m5p_inner_nodes} inner nodes"))
    rows.append(("Training instances", "2776", str(exp41_result.training_instances)))
    print_comparison("Table 3 (Experiment 4.1): deterministic software aging", rows)

    # Shape checks: M5P must beat Linear Regression on both unseen workloads,
    # and its accuracy must improve in the last ten minutes, as in the paper.
    assert exp41_result.m5p_wins("MAE")
    assert exp41_result.m5p_wins("S-MAE")
    for workload in exp41_result.test_workloads:
        m5p = exp41_result.evaluations[(workload, "m5p")]
        assert m5p.post_mae_seconds < m5p.pre_mae_seconds
