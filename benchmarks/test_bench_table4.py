"""Benchmark regenerating Experiment 4.3 / Figure 4 / Table 4 (hidden aging)."""

from repro.core.evaluation import format_duration
from repro.experiments.exp43 import run_experiment_43

from bench_util import print_comparison

#: The paper's Table 4 (seconds), for the feature-selected models.
PAPER_TABLE4 = {
    ("linear", "MAE"): 15 * 60 + 57,
    ("m5p", "MAE"): 3 * 60 + 34,
    ("linear", "S-MAE"): 4 * 60 + 53,
    ("m5p", "S-MAE"): 21,
    ("linear", "PRE-MAE"): 16 * 60 + 10,
    ("m5p", "PRE-MAE"): 3 * 60 + 31,
    ("linear", "POST-MAE"): 8 * 60 + 14,
    ("m5p", "POST-MAE"): 5 * 60 + 29,
}


def test_table4_periodic_pattern_aging(benchmark, paper_scenarios, exp43_result):
    """Regenerate Table 4 and compare against the paper's reported errors."""
    benchmark.pedantic(run_experiment_43, kwargs={"scenarios": paper_scenarios}, iterations=1, rounds=1)
    result = exp43_result
    rows = []
    for metric in ("MAE", "S-MAE", "PRE-MAE", "POST-MAE"):
        rows.append(
            (
                f"Lin Reg {metric} (heap variables)",
                format_duration(PAPER_TABLE4[("linear", metric)]),
                format_duration(result.linear_selected.as_dict()[metric]),
            )
        )
        rows.append(
            (
                f"M5P {metric} (heap variables)",
                format_duration(PAPER_TABLE4[("m5p", metric)]),
                format_duration(result.m5p_selected.as_dict()[metric]),
            )
        )
    rows.append(
        (
            "M5P MAE with the full variable set",
            "poor (motivates selection)",
            format_duration(result.m5p_full.mae_seconds),
        )
    )
    rows.append(
        (
            "Selected model size",
            "18 leaves / 17 inner nodes",
            f"{result.selected_m5p_leaves} leaves / {result.selected_m5p_inner_nodes} inner nodes",
        )
    )
    rows.append(("Experiment duration", "(several hours)", format_duration(result.test_duration_seconds)))
    print_comparison("Table 4 (Experiment 4.3): aging hidden within a periodic pattern", rows)

    # Shape checks.  The heap-variable selection must not hurt M5P, and M5P
    # must be the more accurate model in the last ten minutes before the
    # crash.  (On this substrate Linear Regression tracks the slow net trend
    # of the whole run better than M5P does -- a known deviation from the
    # paper's Table 4 that EXPERIMENTS.md discusses.)
    assert result.selection_helps_m5p()
    assert result.m5p_selected.post_mae_seconds < result.linear_selected.post_mae_seconds
    series = result.figure4_series()
    assert series["jvm_heap_used_mb"].shape == series["time_seconds"].shape
