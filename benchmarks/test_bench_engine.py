"""Benchmarks of the single-server simulation engines.

``test_engine_training_run_speedup`` pits the event-driven default engine
against the retained per-second reference on the paper's one-hour 100-EB
no-injection training run -- the run that dominates ``run_cluster_experiment``
wall-clock (every scenario kind regenerates several of them) -- and asserts
the >=3x speedup with bit-for-bit identical traces.

``test_engine_memory_leak_run_speedup`` does the same for a crash-bounded
memory-leak run (Experiment 4.1's bread and butter): the run ends when the
paper-scale 1 GB heap exhausts, so the horizon is the crash time itself.

Both interleave reference/event pairs and assert the median per-pair ratio,
so transient machine noise (which hits both engines of a pair alike) cannot
fake or mask the speedup.  Within a pair each engine is timed as the best of
three back-to-back runs: this benchmark box's wall clock swings tens of
percent between runs, and the per-engine minimum estimates the true cost
with the noise stripped equally from both sides.
"""

import time

from repro.testbed.config import TestbedConfig
from repro.testbed.engine import TestbedSimulation
from repro.testbed.faults.memory_leak import MemoryLeakInjector

from bench_util import BENCH_SEED, print_comparison

_TRAINING_EBS = 100
_TRAINING_SECONDS = 3600.0
_LEAK_N = 30
_LEAK_MAX_SECONDS = 12 * 3600.0
_PAIRS = 5
_RUNS_PER_SIDE = 3


def _best_of(build, max_seconds, engine):
    """Best-of-N wall clock of one engine, checking the trace each run."""
    best_seconds = None
    trace = None
    for _ in range(_RUNS_PER_SIDE):
        simulation = build()
        started = time.perf_counter()
        trace = simulation.run(max_seconds=max_seconds, engine=engine)
        elapsed = time.perf_counter() - started
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, trace


def _speedup_pairs(benchmark, build, max_seconds, title, minimum, extra_info):
    """Interleaved median-of-pairs speedup of event vs per-second engines."""
    ratios = []
    reference_times = []
    event_times = []
    for _ in range(_PAIRS):
        reference_seconds, reference_trace = _best_of(build, max_seconds, "per_second")
        event_seconds, event_trace = _best_of(build, max_seconds, "event")
        assert event_trace.samples == reference_trace.samples
        assert event_trace.crash_time_seconds == reference_trace.crash_time_seconds
        reference_times.append(reference_seconds)
        event_times.append(event_seconds)
        ratios.append(reference_seconds / event_seconds)

    # One extra event-engine round through the benchmark fixture so the
    # BENCH json records the engine's own timing distribution.
    benchmark.pedantic(lambda: build().run(max_seconds=max_seconds), iterations=1, rounds=1)

    speedup = sorted(ratios)[len(ratios) // 2]
    benchmark.extra_info.update(extra_info)
    benchmark.extra_info["per_second_engine_s"] = round(min(reference_times), 3)
    benchmark.extra_info["event_engine_s"] = round(min(event_times), 3)
    benchmark.extra_info["speedup_x"] = round(speedup, 2)
    print_comparison(
        title,
        [
            ("per-second reference (best pair)", "-", f"{min(reference_times):.3f} s"),
            ("event-driven engine (best pair)", "-", f"{min(event_times):.3f} s"),
            ("speedup (median of pairs)", f">= {minimum:.0f}x", f"{speedup:.1f}x"),
            ("per-pair ratios", "-", ", ".join(f"{r:.1f}x" for r in ratios)),
            ("samples identical", "expected", "True"),
        ],
    )
    assert speedup >= minimum
    return event_trace


def test_engine_training_run_speedup(benchmark):
    """One-hour 100-EB no-injection training run: >=3x, identical traces."""

    def build():
        return TestbedSimulation(config=TestbedConfig(), workload_ebs=_TRAINING_EBS, seed=BENCH_SEED)

    trace = _speedup_pairs(
        benchmark,
        build,
        _TRAINING_SECONDS,
        "Engine: event-driven vs per-second, one-hour training run",
        minimum=3.0,
        extra_info={"workload_ebs": _TRAINING_EBS, "duration_seconds": _TRAINING_SECONDS},
    )
    assert not trace.crashed
    assert len(trace.samples) == 240


def test_engine_memory_leak_run_speedup(benchmark):
    """Crash-bounded memory-leak run (N=30, 1 GB heap): >=2x, same crash tick."""

    def build():
        return TestbedSimulation(
            config=TestbedConfig(),
            workload_ebs=_TRAINING_EBS,
            injectors=[MemoryLeakInjector(n=_LEAK_N, seed=BENCH_SEED)],
            seed=BENCH_SEED,
        )

    trace = _speedup_pairs(
        benchmark,
        build,
        _LEAK_MAX_SECONDS,
        "Engine: event-driven vs per-second, crash-bounded memory-leak run",
        minimum=2.0,
        extra_info={
            "workload_ebs": _TRAINING_EBS,
            "duration_seconds": _LEAK_MAX_SECONDS,
            "leak_n": _LEAK_N,
        },
    )
    assert trace.crashed and trace.crash_resource == "memory"
    benchmark.extra_info["crash_time_s"] = trace.crash_time_seconds
